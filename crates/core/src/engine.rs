//! The Wukong+S engine: registration, ingestion, triggering, execution.
//!
//! One [`WukongS`] value is a whole deployment. All methods take `&self`;
//! internal locks keep the streaming pipeline serialised while queries
//! execute concurrently against the shared hybrid store — the paper's
//! decentralised architecture where "all streaming and stored data will be
//! shared by concurrent queries" (§2.2).

use crate::access::NodeAccess;
use crate::checkpoint::{Checkpoint, LoggedBatch, LoggedQuery};
use crate::cluster::Cluster;
use crate::config::{EngineConfig, ExecMode};
use crate::forkjoin::execute_forkjoin_traced;
use crate::scrub::ScrubViolation;
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wukong_net::{NodeId, TaskTimer};
use wukong_obs::trace::{self, BatchId, FiringId, Marker, TraceRecorder};
use wukong_obs::{Stage, StageTrace};
use wukong_query::exec::{ExecContext, GraphAccess, StringLiteralResolver, WindowInstance};
use wukong_query::{
    parse_query, plan_query, Degraded, Plan, PlanCache, PlanFeedback, Query, QueryError, QueryKind,
    ResultSet, StepMode,
};
use wukong_rdf::{Dir, Key, StreamId, StringServer, Timestamp, Triple};
use wukong_store::{gc, StatsEpoch};
use wukong_stream::window::StreamWindow;
use wukong_stream::{
    dispatch, Adaptor, Batch, Coordinator, InjectStats, ShedRecord, Shedder, StreamSchema, Vts,
    WindowState,
};

/// Handle of a registered continuous query.
pub type ContinuousId = usize;

/// One ready window batch: the fired `(stream, lo, hi)` instances plus
/// the snapshot the SN-VTS plan assigned to the window's end.
type AssignedBatch = Vec<(Vec<(usize, Timestamp, Timestamp)>, wukong_store::SnapshotId)>;

/// An [`AssignedBatch`] entry after the serial causal-ID mint: the
/// window instances, assigned snapshot, and the firing's [`FiringId`].
type MintedFiring = (
    Vec<(usize, Timestamp, Timestamp)>,
    wukong_store::SnapshotId,
    FiringId,
);

/// Simulated per-batch logging delay under fault tolerance (§6.8 measures
/// ≈ 0.3 ms per batch on the paper's testbed).
const LOGGING_DELAY_NS: u64 = 300_000;

/// How many processed batches of one stream advance the statistics epoch
/// (the plan cache's freshness key). Batch processing is deterministic,
/// so epoch advancement — and therefore every cache hit/miss and re-plan
/// point — replays identically under the same workload.
const STATS_EPOCH_BATCHES: u64 = 32;

/// Operational snapshot of a running deployment (see [`WukongS::stats`]).
#[derive(Debug, Clone)]
pub struct DeploymentStats {
    /// Simulated cluster nodes.
    pub nodes: usize,
    /// Registered streams.
    pub streams: usize,
    /// Registered continuous queries.
    pub continuous_queries: usize,
    /// Triples in the persistent store (initial + absorbed).
    pub stored_triples: u64,
    /// Persistent-store heap bytes across shards.
    pub store_bytes: usize,
    /// Stream-index heap bytes (one canonical copy).
    pub stream_index_bytes: usize,
    /// Transient-ring heap bytes across nodes.
    pub transient_bytes: usize,
    /// Raw (textual) stream bytes received so far.
    pub raw_stream_bytes: usize,
    /// The stable snapshot number.
    pub stable_sn: wukong_store::SnapshotId,
    /// Stream batches processed in total.
    pub batches_processed: u64,
    /// Fabric operation counters.
    pub fabric: wukong_net::MetricsSnapshot,
}

/// What a recovery replayed and restored (see
/// [`WukongS::recover_with_report`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Wall-clock duration of the whole recovery path, ms.
    pub recovery_ms: f64,
    /// Logged batches re-enqueued from the checkpoint chain.
    pub replayed_batches: u64,
    /// Continuous queries re-registered from the query log.
    pub replayed_queries: u64,
    /// Batches / sub-batches suppressed as duplicates during replay.
    pub dedup_suppressed: u64,
    /// The stable snapshot number after replay.
    pub restored_stable_sn: u64,
    /// Integrity violations the recovery path detected and routed around
    /// (e.g. a corrupted durable checkpoint rejected by its section
    /// checksums, forcing the pristine upstream copy — DESIGN.md §13).
    pub integrity_violations: u64,
    /// Shards that were in quarantine when the rebuild started; recovery
    /// replays their pristine logged batches, so the rebuilt engine
    /// starts with none.
    pub quarantined_shards: u64,
    /// Causal IDs of every batch the replay re-enqueued, in replay
    /// order. Batch IDs are a pure function of `(stream, timestamp)`,
    /// so these join directly against pre-crash flight-recorder traces.
    pub replayed_batch_ids: Vec<BatchId>,
}

/// The deadline-aware degradation state machine (DESIGN.md §11).
///
/// Only meaningful when [`EngineConfig::ingest_budget`] is set; an
/// unbounded engine stays in `Normal` forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadState {
    /// Keeping up: no pending shed tuples, firings inside the budget.
    #[default]
    Normal,
    /// Overloaded: the shedder has dropped tuples (or firings sustainedly
    /// missed the latency budget) and one-shot admission is closed.
    Shedding,
    /// Transient: replaying the retained shed suffix. Observable only
    /// through counters — the replay runs synchronously under the
    /// pipeline lock and lands back in `Normal`.
    CatchUp,
}

/// One execution of a continuous query.
#[derive(Debug, Clone)]
pub struct Firing {
    /// The registered query that fired.
    pub query: ContinuousId,
    /// Its `REGISTER QUERY` name, if any.
    pub name: Option<String>,
    /// End timestamp (inclusive) of the fired windows.
    pub window_end: Timestamp,
    /// The results.
    pub results: ResultSet,
    /// Total latency: real compute + charged network time, ms.
    pub latency_ms: f64,
    /// Staged breakdown of this firing's latency (the disjoint query
    /// stages sum to `latency_ms`; fork-join sub-spans overlap).
    pub stages: StageTrace,
}

struct Registered {
    text: String,
    query: Query,
    /// Query-local stream index → cluster stream index.
    stream_map: Vec<usize>,
    window: Mutex<WindowState>,
    home: NodeId,
    plan: Mutex<Option<Plan>>,
    /// Set when the query is unregistered; retired queries stop firing
    /// and no longer pin GC horizons or index replication.
    retired: std::sync::atomic::AtomicBool,
    /// For CONSTRUCT queries: the derived stream firings feed.
    construct_target: Option<StreamId>,
    /// Rows emitted by the previous firing (IStream semantics: each
    /// firing emits only results that were not in the previous window).
    last_emitted: Mutex<std::collections::HashSet<Vec<wukong_rdf::Vid>>>,
    /// Delta-maintenance state (materialized binding rows tagged with
    /// their contributing batch timestamps), populated only while the
    /// engine runs this query incrementally. `None` means the next
    /// maintained firing rebuilds from scratch — the initial value, and
    /// what recovery restores by re-registering queries fresh.
    delta: Mutex<Option<wukong_query::DeltaState>>,
    /// Cardinality feedback for the current plan (adaptive mode only):
    /// frozen per-step estimates plus the drift streak. Reset whenever
    /// the plan is (re)derived.
    feedback: Mutex<Option<PlanFeedback>>,
}

struct Pipeline {
    adaptors: Vec<Adaptor>,
    coordinator: Coordinator,
    /// Stalled batches per stream, FIFO (injection order within a stream
    /// is a consistency requirement, §4.3).
    pending: Vec<std::collections::VecDeque<Batch>>,
    /// Coalesced clock jumps per stream, FIFO: `(after, to)` pairs from
    /// the adaptor, applied to the coordinator once the batch ending
    /// `after` is inserted on every node (see `drain_pending`).
    clock_jumps: Vec<std::collections::VecDeque<(Timestamp, Timestamp)>>,
    batches_done: Vec<u64>,
    inject_stats: Vec<InjectStats>,
    /// Injection-time consolidation horizon (stable SN − 1).
    merge_upto: Option<wukong_store::SnapshotId>,
    /// Batches logged since the last checkpoint (fault tolerance).
    log: Vec<LoggedBatch>,
    /// Bounded-ingest shedder (inert while `ingest_budget` is `None`).
    shedder: Shedder,
    /// Degradation state machine (DESIGN.md §11).
    overload: OverloadState,
    /// Consecutive continuous firings over the latency budget.
    miss_streak: u32,
    /// Stream time when a latency-miss streak tripped the state machine
    /// (shed-driven trips anchor on the shedder's `last_shed_ts`).
    tripped_at: Option<Timestamp>,
    /// Per-node quarantine flags (DESIGN.md §13): a node whose sub-batch
    /// failed its install-site checksum stops installing and reporting —
    /// its local VTS pins exactly like a dead node's, so no firing ever
    /// advances past the poisoned point — until rebuild-from-checkpoint.
    quarantined: Vec<bool>,
    /// Conservation ledger, ingest side: tuples that entered the
    /// pipeline (scrubber invariant, DESIGN.md §13).
    ledger_in: u64,
    /// Conservation ledger, egress side: tuples handed to per-node
    /// install (or consumed by dedup/rejection) by `process_batch`.
    ledger_installed: u64,
    /// Per-node local VTS entries at the previous scrub pass, for the
    /// monotonicity check.
    scrub_last: Vec<Vec<Timestamp>>,
}

/// A Wukong+S deployment.
pub struct WukongS {
    cfg: EngineConfig,
    cluster: Arc<Cluster>,
    pipeline: Mutex<Pipeline>,
    registry: RwLock<Vec<Arc<Registered>>>,
    next_home: AtomicUsize,
    checkpoints: Mutex<Vec<Bytes>>,
    /// Plan memo keyed on `(normalized text, stats epoch)`; consulted by
    /// registration-time planning, re-planning, and one-shot admission
    /// while [`EngineConfig::adaptive`] is on.
    plan_cache: PlanCache,
    /// The store-statistics epoch: bumped deterministically every
    /// [`STATS_EPOCH_BATCHES`] processed batches per stream, invalidating
    /// cached plans built from older cardinalities.
    stats_epoch: StatsEpoch,
}

impl WukongS {
    /// Boots a deployment.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_strings(cfg, Arc::new(StringServer::new()))
    }

    /// Boots a deployment sharing an existing string server (workload
    /// generators intern their entities before the engine exists).
    pub fn with_strings(cfg: EngineConfig, strings: Arc<StringServer>) -> Self {
        let cluster = Arc::new(Cluster::new_with_strings(&cfg, strings));
        cluster.obs().trace().set_enabled(cfg.trace);
        let coordinator = Coordinator::new(cfg.nodes, Vec::new(), cfg.staleness);
        WukongS {
            cluster,
            pipeline: Mutex::new(Pipeline {
                adaptors: Vec::new(),
                coordinator,
                pending: Vec::new(),
                clock_jumps: Vec::new(),
                batches_done: Vec::new(),
                inject_stats: Vec::new(),
                merge_upto: None,
                log: Vec::new(),
                shedder: Shedder::new(cfg.shed_policy, cfg.shed_seed),
                overload: OverloadState::Normal,
                miss_streak: 0,
                tripped_at: None,
                quarantined: vec![false; cfg.nodes],
                ledger_in: 0,
                ledger_installed: 0,
                scrub_last: vec![Vec::new(); cfg.nodes],
            }),
            registry: RwLock::new(Vec::new()),
            next_home: AtomicUsize::new(0),
            checkpoints: Mutex::new(Vec::new()),
            plan_cache: PlanCache::default(),
            stats_epoch: StatsEpoch::new(),
            cfg,
        }
    }

    /// The engine's string server (intern data and query names here).
    pub fn strings(&self) -> &Arc<StringServer> {
        self.cluster.strings()
    }

    /// The underlying cluster (metrics, memory accounting).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// A cloneable handle onto the deployment's observability surfaces
    /// (staged-latency registry + fabric counters); outlives `&self`
    /// borrows, so monitors can hold it across an experiment.
    pub fn handle(&self) -> crate::cluster::ClusterHandle {
        crate::cluster::ClusterHandle::new(Arc::clone(&self.cluster))
    }

    /// The configuration this deployment runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The deployment's flight recorder (always present; event capture
    /// is gated by [`EngineConfig::trace`]).
    fn tracer(&self) -> &Arc<TraceRecorder> {
        self.cluster.obs().trace()
    }

    /// Loads initial stored data (snapshot 0).
    pub fn load_base(&self, triples: impl IntoIterator<Item = Triple>) {
        for t in triples {
            self.cluster.load_base_triple(t);
        }
    }

    /// Registers a stream; the returned ID doubles as the cluster stream
    /// index (any ID in `schema` is overwritten).
    pub fn register_stream(&self, mut schema: StreamSchema) -> StreamId {
        let mut pl = self.pipeline.lock();
        let idx = self.cluster.stream_count();
        schema.id = StreamId(idx as u16);
        let interval = schema.batch_interval_ms;
        let cidx = self.cluster.add_stream(schema.clone());
        debug_assert_eq!(cidx, idx);
        pl.adaptors.push(Adaptor::new(schema));
        pl.coordinator.add_stream(interval);
        pl.pending.push(Default::default());
        pl.clock_jumps.push(Default::default());
        pl.batches_done.push(0);
        pl.inject_stats.push(InjectStats::default());
        StreamId(idx as u16)
    }

    /// Feeds one raw tuple into a stream, pumping any batches it seals.
    ///
    /// Streams share one time axis: observing time `ts` on any stream
    /// also heartbeats every other stream up to `ts` minus one of its
    /// batch intervals (the skew allowance), so quiet streams — e.g. a
    /// derived stream that has not emitted yet — keep sealing empty
    /// batches and never stall the SN-VTS plan (Fig. 11's injector
    /// stall). Tuples arriving within the allowance still land in an
    /// open batch.
    pub fn ingest(&self, stream: StreamId, triple: Triple, ts: Timestamp) {
        // Observed time drives the fault schedule: kills/restarts planned
        // at or before `ts` apply before this tuple's batches dispatch.
        self.cluster.fabric().advance_clock(ts);
        let mut pl = self.pipeline.lock();
        let mut sealed = pl.adaptors[stream.0 as usize].push(triple, ts);
        for (i, a) in pl.adaptors.iter_mut().enumerate() {
            if i != stream.0 as usize {
                let horizon = ts.saturating_sub(a.schema().batch_interval_ms);
                sealed.extend(a.advance_to(horizon));
            }
        }
        self.drain_adaptor_work(&mut pl);
        sealed.sort_by_key(|b| b.timestamp);
        for b in sealed {
            self.enqueue_batch(&mut pl, b);
        }
        self.drain_pending(&mut pl);
        self.maybe_catch_up(&mut pl);
    }

    /// Drains each adaptor's accumulated windowing/sealing time into its
    /// stream's `Adaptor` stage histogram, and its coalesced clock-jump
    /// count into the stream's injection stats.
    fn drain_adaptor_work(&self, pl: &mut Pipeline) {
        for i in 0..pl.adaptors.len() {
            let ns = pl.adaptors[i].take_work_ns();
            pl.inject_stats[i].clock_anomalies += pl.adaptors[i].take_clock_anomalies();
            let jumps = pl.adaptors[i].take_clock_jumps();
            pl.clock_jumps[i].extend(jumps);
            if ns > 0 {
                let name = pl.adaptors[i].schema().name.clone();
                self.cluster
                    .obs()
                    .record_stream_stage(&name, Stage::Adaptor, ns);
            }
        }
    }

    /// Advances every stream's clock to `ts`, sealing quiet batches (the
    /// heartbeat that keeps the VTS — and therefore visibility — moving).
    pub fn advance_time(&self, ts: Timestamp) {
        self.cluster.fabric().advance_clock(ts);
        let mut pl = self.pipeline.lock();
        let mut sealed = Vec::new();
        for a in &mut pl.adaptors {
            sealed.extend(a.advance_to(ts));
        }
        self.drain_adaptor_work(&mut pl);
        // Preserve cross-stream time order for snapshot assignment.
        sealed.sort_by_key(|b| b.timestamp);
        for b in sealed {
            self.enqueue_batch(&mut pl, b);
        }
        self.drain_pending(&mut pl);
        self.maybe_catch_up(&mut pl);
    }

    /// Raw arrival volume of a batch in its textual RDF form (Table 7
    /// compares the index against the data as it arrives on the wire:
    /// N-Triples-style lines with IRI framing and a timestamp).
    fn textual_bytes(&self, batch: &Batch) -> u64 {
        const FRAMING: u64 = 24; // brackets, separators, timestamp digits
                                 // Workload generators intern short local names; on the wire each
                                 // term carries its namespace IRI (LSBench's raw data averages
                                 // ~174 B/triple: 3.75 B triples = 653 GB raw, 6.1).
        const IRI_PREFIX: u64 = 30;
        let ss = self.strings();
        batch
            .tuples
            .iter()
            .map(|t| {
                let len = |r: Result<String, _>| r.map(|s| s.len() as u64).unwrap_or(8);
                len(ss.entity_name(t.triple.s))
                    + len(ss.predicate_name(t.triple.p))
                    + len(ss.entity_name(t.triple.o))
                    + 3 * IRI_PREFIX
                    + FRAMING
            })
            .sum()
    }

    fn enqueue_batch(&self, pl: &mut Pipeline, batch: Batch) {
        let s = batch.stream.0 as usize;
        // First causal appearance of this batch's ID: a zero-width
        // Adaptor span marking seal → pipeline entry.
        let _seal_span = self
            .tracer()
            .span(Stage::Adaptor, FiringId::NONE, batch.id());
        // Log on arrival, not on processing: a batch stalled behind a
        // dead node's VTS entry must already be in the durable log, or a
        // crash during the outage loses it (§5 logs each batch as it
        // enters the pipeline).
        if self.cfg.fault_tolerance {
            pl.log.push(LoggedBatch {
                stream: s as u16,
                timestamp: batch.timestamp,
                tuples: batch.tuples.clone(),
            });
            pl.inject_stats[s].inject_ns += LOGGING_DELAY_NS;
        }
        pl.ledger_in += batch.tuples.len() as u64;
        pl.pending[s].push_back(batch);

        // Bounded ingest: enforce the per-stream budget over the pending
        // queue. Shed decisions are a pure function of queue occupancy
        // and the configured seed — never wall-clock latency — so the
        // shed log and every degraded marker are byte-identical across
        // runs and worker counts (DESIGN.md §11).
        let Some(budget) = self.cfg.ingest_budget else {
            return;
        };
        let t0 = std::time::Instant::now();
        let shed_log_before = pl.shedder.log().len();
        let shed = pl.shedder.enforce(&mut pl.pending[s], &budget);
        if shed > 0 {
            let overload = self.cluster.obs().overload();
            match pl.shedder.policy() {
                wukong_stream::ShedPolicy::DropOldestWindow => overload.inc_shed_drop_oldest(),
                wukong_stream::ShedPolicy::SampleWithinBatch => overload.inc_shed_sampled(),
            }
            overload.add_tuples_shed(shed);
            // Every shed event is a point marker joined on the victim
            // batch's causal ID; the episode *start* (the Normal →
            // Shedding transition) is the anomaly that freezes the
            // recorder into a black-box dump.
            let tracer = self.tracer();
            for rec in &pl.shedder.log()[shed_log_before..] {
                tracer.marker(Marker::Shed, FiringId::NONE, rec.batch, rec.tuples_shed);
            }
            if pl.overload == OverloadState::Normal {
                pl.overload = OverloadState::Shedding;
                overload.inc_state_transition();
                let first = pl.shedder.log()[shed_log_before..]
                    .first()
                    .map(|r| r.batch)
                    .unwrap_or(BatchId::NONE);
                tracer.anomaly(Marker::Shed, FiringId::NONE, first, shed);
            }
            let name = self.cluster.stream(s).schema.name.clone();
            self.cluster.obs().record_stream_stage(
                &name,
                Stage::Shed,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    /// The engine-wide stream time: the furthest any stream's stable VTS
    /// entry has reached. Drives the deterministic catch-up trigger.
    fn stream_now(pl: &Pipeline) -> Timestamp {
        pl.coordinator
            .stable_vts()
            .entries()
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Leaves `Shedding` once the overload subsides: when stream time
    /// passes the last shed (or latency trip) by the configured quiet
    /// period and every node is reachable, replay the retained shed
    /// suffix and return to `Normal`. The trigger reads only stream time
    /// and shedder state, so it fires at the same point in every run.
    fn maybe_catch_up(&self, pl: &mut Pipeline) {
        if self.cfg.ingest_budget.is_none() || pl.overload != OverloadState::Shedding {
            return;
        }
        let now = Self::stream_now(pl);
        let anchor = match (pl.shedder.last_shed_ts(), pl.tripped_at) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            // Tripped state without a recorded cause cannot linger.
            (None, None) => 0,
        };
        if now < anchor.saturating_add(self.cfg.overload.catchup_quiet_ms) {
            return;
        }
        // A replay inserts on every node; a dead or unreachable node
        // would miss its share, so wait the outage out.
        let fabric = self.cluster.fabric();
        if (0..self.cluster.nodes()).any(|n| !fabric.is_up(NodeId(n as u16))) {
            return;
        }
        self.catch_up(pl);
    }

    /// Shed-then-catch-up recovery: re-inserts every retained shed tuple
    /// at its original timestamp, directly into the hybrid store at the
    /// current stable snapshot. The coordinator, its at-least-once dedup,
    /// and the durable log are all bypassed — these batches already
    /// passed the pipeline once; this is repair, not re-ingestion. After
    /// the replay, windows covering the shed suffix are whole again:
    /// their firings byte-match a never-overloaded run (DESIGN.md §11).
    fn catch_up(&self, pl: &mut Pipeline) {
        let t0 = std::time::Instant::now();
        let _span = self
            .tracer()
            .span(Stage::CatchUp, FiringId::NONE, BatchId::NONE);
        let overload = self.cluster.obs().overload();
        pl.overload = OverloadState::CatchUp;
        overload.inc_state_transition();

        let retained = pl.shedder.take_retained();
        let sn = pl.coordinator.stable_sn();
        let merge = self.clamped_merge(pl);
        let nodes = self.cluster.nodes();
        let fabric = self.cluster.fabric();
        let mut scratch = TaskTimer::start();
        let mut replayed = 0u64;
        let mut touched: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for (stream_id, ts, tuples) in retained {
            let s = stream_id.0 as usize;
            touched.insert(s);
            replayed += tuples.len() as u64;
            let batch = Batch::sealed(stream_id, ts, tuples, 0);
            let stream = self.cluster.stream(s);
            *stream.raw_bytes.write() += self.textual_bytes(&batch);
            let subs = dispatch(&batch, self.cluster.shard_map());
            let entry = NodeId((s % nodes) as u16);
            let mut receipts: Vec<Vec<wukong_store::base::AppendReceipt>> = vec![Vec::new(); nodes];
            let mut index_updates: Vec<(wukong_rdf::Key, wukong_rdf::Vid)> = Vec::new();
            for sub in &subs {
                let node = sub.node;
                if node as usize != entry.0 as usize && !sub.tuples.is_empty() {
                    fabric.charge_message(entry, NodeId(node), sub.wire_bytes(), &mut scratch);
                }
                let owns = self.cluster.shard_map().owner_filter(node);
                let shard = self.cluster.shard(node);
                for t in sub.tuples.iter().filter(|t| t.is_timeless()) {
                    let tr = t.triple;
                    let out_key = tr.out_key();
                    if owns(out_key) {
                        shard.count_triple();
                        let (off, first) = shard.append_owned(out_key, tr.o, sn, merge);
                        receipts[node as usize].push(wukong_store::base::AppendReceipt {
                            key: out_key,
                            offset: off,
                        });
                        if first {
                            index_updates
                                .push((wukong_rdf::Key::index(tr.p, wukong_rdf::Dir::Out), tr.s));
                        }
                    }
                    let in_key = tr.in_key();
                    if owns(in_key) {
                        let (off, first) = shard.append_owned(in_key, tr.s, sn, merge);
                        receipts[node as usize].push(wukong_store::base::AppendReceipt {
                            key: in_key,
                            offset: off,
                        });
                        if first {
                            index_updates
                                .push((wukong_rdf::Key::index(tr.p, wukong_rdf::Dir::In), tr.o));
                        }
                    }
                }
                // Timing tuples re-enter the transient ring *in time
                // order* — the ring normally only appends at the tail,
                // so replay uses the order-preserving insertion path.
                let timing: Vec<wukong_rdf::StreamTuple> = sub
                    .tuples
                    .iter()
                    .filter(|t| !t.is_timeless())
                    .copied()
                    .collect();
                if !timing.is_empty() {
                    stream.transients[node as usize].write().insert_slice(
                        wukong_store::TransientSlice::from_batch_filtered(ts, &timing, &owns),
                    );
                }
            }
            // Index-vertex updates land on their owners (phase 2 of the
            // normal injection path).
            for (key, v) in index_updates {
                let node = self.cluster.shard_map().node_of_key(key);
                let (off, _) = self.cluster.shard(node).append_owned(key, v, sn, merge);
                receipts[node as usize]
                    .push(wukong_store::base::AppendReceipt { key, offset: off });
            }
            for (node, rc) in receipts.iter().enumerate() {
                if rc.is_empty() {
                    continue;
                }
                let ib = wukong_store::IndexBatch::from_receipts(ts, rc);
                stream.indexes[node].write().insert_batch(ib);
            }
        }

        // A replay rewrites window history behind any maintained query
        // reading a replayed stream: its retained delta rows were derived
        // from the shed (incomplete) windows. Drop the state so the next
        // firing rebuilds from the now-complete store — recompute and
        // incremental stay byte-identical across the shed gap.
        if self.cfg.incremental {
            for r in self.registry.read().iter() {
                if r.retired.load(Ordering::Relaxed)
                    || !r.stream_map.iter().any(|s| touched.contains(s))
                {
                    continue;
                }
                let mut delta = r.delta.lock();
                if delta.is_some() {
                    *delta = None;
                    overload.inc_incremental_rebuild();
                }
            }
        }

        overload.inc_catchup_replay();
        overload.add_replayed_tuples(replayed);
        pl.overload = OverloadState::Normal;
        pl.miss_streak = 0;
        pl.tripped_at = None;
        overload.inc_state_transition();
        self.cluster.obs().record_stream_stage(
            "catch-up",
            Stage::CatchUp,
            t0.elapsed().as_nanos() as u64,
        );
    }

    /// The consolidation horizon actually applied to installs: the raw
    /// stable-SN horizon, clamped at every un-fired window's *assigned*
    /// snapshot. Consolidation merges snapshot intervals into the
    /// timeless base — visible at **every** snapshot — so merging past a
    /// window's assigned snapshot would inflate its historical read and
    /// its rows would stop being a pure function of the window (the
    /// assigned-snapshot firing contract, DESIGN.md §13). On-cadence
    /// windows sit at most one epoch behind the horizon, so the clamp
    /// costs nothing in steady state; it only holds consolidation back
    /// while an outage or a recovery replay has delayed firings.
    fn clamped_merge(&self, pl: &Pipeline) -> Option<wukong_store::SnapshotId> {
        let raw = pl.merge_upto?;
        let mut merge = raw;
        for r in self.registry.read().iter() {
            if r.retired.load(Ordering::Relaxed) {
                continue;
            }
            let w = r.window.lock();
            let hi = w.next_fire();
            // A firing reads at the max assigned epoch over its streams;
            // merging up to exactly that snapshot keeps the visible set
            // unchanged (merged tags ⊆ tags the read covers).
            if let Some(sn_w) = w
                .windows()
                .iter()
                .filter_map(|sw| pl.coordinator.snapshot_at(sw.stream, hi))
                .max()
            {
                merge = merge.min(sn_w);
            }
        }
        Some(merge)
    }

    /// Processes pending batches until no stream can make progress.
    fn drain_pending(&self, pl: &mut Pipeline) {
        loop {
            let mut progressed = false;
            for s in 0..pl.pending.len() {
                progressed |= self.apply_clock_jumps(pl, s);
                while let Some(front) = pl.pending[s].front() {
                    let sn = pl.coordinator.snapshot_for(s, front.timestamp);
                    match sn {
                        Some(sn) => {
                            let batch = pl.pending[s].pop_front().expect("front checked");
                            self.process_batch(pl, batch, sn);
                            progressed = true;
                        }
                        None => break,
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Applies stream `s`'s coalesced clock jumps that have become safe:
    /// a jump `(after, to)` promises the adaptor sealed nothing strictly
    /// between `after` and `to`, so once the batch ending `after` is
    /// inserted on **every** node (a dead node catches up via log
    /// replay first — jumping its VTS over a batch it missed would make
    /// the redelivery dedup swallow real data), the skipped grid points
    /// are vacuously-empty insertions and the VTS may cross the gap.
    /// This is what un-stalls the SN-VTS plan after a quiet gap: its
    /// targets inside the gap can never be reached batch-by-batch.
    fn apply_clock_jumps(&self, pl: &mut Pipeline, s: usize) -> bool {
        let mut progressed = false;
        while let Some(&(after, to)) = pl.clock_jumps[s].front() {
            let reached =
                (0..pl.coordinator.nodes()).all(|n| pl.coordinator.local_vts(n).get(s) >= after);
            if !reached {
                break;
            }
            pl.clock_jumps[s].pop_front();
            let ev = pl.coordinator.advance_gap(s, to);
            if let Some(upto) = ev.consolidate_upto {
                pl.merge_upto = Some(upto);
            }
            progressed = true;
        }
        progressed
    }

    fn process_batch(&self, pl: &mut Pipeline, batch: Batch, sn: wukong_store::SnapshotId) {
        let s = batch.stream.0 as usize;
        let bid = batch.id();
        let tracer = Arc::clone(self.tracer());
        // Scoped context for the whole batch path: fabric-level events
        // (dead-node drops, retry exhaustion) attribute to this batch.
        let _scope = trace::install_recorder(&tracer, FiringId::NONE, bid);
        // Conservation ledger: the batch leaves the pending queues here —
        // installed, dedup-suppressed, or rejected alike — so the egress
        // side counts before any early return (scrubber invariant,
        // DESIGN.md §13).
        pl.ledger_installed += batch.tuples.len() as u64;
        // Batch-site integrity: a payload that no longer matches its
        // sealed checksum must never install anywhere. Dropping it stalls
        // the stream's VTS at the previous batch — detection before
        // emission — and recovery replays the pristine logged copy.
        if !batch.verify() {
            self.cluster.obs().integrity().inc_checksum_fail_batch();
            tracer.anomaly(Marker::ChecksumFail, FiringId::NONE, bid, 0);
            return;
        }
        // At-least-once suppression: a batch at or below the stream's
        // stable timestamp is already inserted on every node, so a
        // redelivery (upstream retry, log replay into a live engine)
        // must be a no-op.
        if batch.timestamp > 0 && pl.coordinator.stable_vts().get(s) >= batch.timestamp {
            self.cluster.obs().faults().inc_dedup_suppressed();
            return;
        }
        let stream = self.cluster.stream(s);
        *stream.raw_bytes.write() += self.textual_bytes(&batch);
        pl.inject_stats[s].discarded += batch.discarded;

        // Dispatch: the stream enters at one node; each non-empty remote
        // sub-batch costs a message (background cost, counted in fabric
        // metrics but not on any query's latency). Under a fault plan the
        // entry point fails over to the next live node, sub-batches go
        // through the lossy at-least-once path (dropped copies are
        // retransmitted, duplicate copies suppressed), and sub-batches
        // for dead nodes are lost until recovery replays the log.
        let dispatch_start = std::time::Instant::now();
        let dispatch_span = tracer.span(Stage::Dispatch, FiringId::NONE, bid);
        let mut subs = dispatch(&batch, self.cluster.shard_map());
        let fabric = self.cluster.fabric();
        let faulty = fabric.faults_enabled();
        let nodes = self.cluster.nodes();
        let mut entry_idx = s % nodes;
        if faulty && !fabric.is_up(NodeId(entry_idx as u16)) {
            if let Some(live) = (0..nodes)
                .map(|k| (entry_idx + k) % nodes)
                .find(|&n| fabric.is_up(NodeId(n as u16)))
            {
                entry_idx = live;
            }
        }
        let entry = NodeId(entry_idx as u16);
        let mut scratch = TaskTimer::start();
        // Which nodes actually receive (and therefore insert and report)
        // this batch. An empty sub-batch "arrives" implicitly — no
        // message — but still only on live nodes.
        let mut delivered = vec![true; nodes];
        for (node, q) in pl.quarantined.iter().enumerate() {
            if *q {
                delivered[node] = false;
            }
        }
        for sub in &subs {
            let to = NodeId(sub.node);
            if !delivered[sub.node as usize] {
                // Quarantined destination: treated exactly like a dead
                // node — no send, no install, no report (DESIGN.md §13).
                continue;
            }
            if faulty && !fabric.is_up(to) {
                delivered[sub.node as usize] = false;
                if !sub.tuples.is_empty() {
                    // Counts the drops; returns 0 copies for a dead node.
                    fabric.send_at_least_once(entry, to, sub.wire_bytes(), &mut scratch);
                }
                continue;
            }
            if sub.tuples.is_empty() {
                continue;
            }
            if faulty {
                let copies = fabric.send_at_least_once(entry, to, sub.wire_bytes(), &mut scratch);
                if copies > 1 {
                    self.cluster
                        .obs()
                        .faults()
                        .add_dedup_suppressed(u64::from(copies - 1));
                }
            } else {
                fabric.charge_message(entry, to, sub.wire_bytes(), &mut scratch);
            }
        }
        let dispatch_ns = dispatch_start.elapsed().as_nanos() as u64;
        drop(dispatch_span);

        // In-flight corruption (chaos): an active corruption rule may
        // flip one bit in a delivered remote sub-batch between the wire
        // and the store. Only delivered non-empty remote subs are
        // candidates, so every injected flip meets the install-site
        // check below — the 100%-detection gate in `exp_chaos`.
        if faulty {
            if let Some(fs) = fabric.fault_state() {
                for sub in subs.iter_mut() {
                    let node = sub.node as usize;
                    if node == entry_idx || sub.tuples.is_empty() || !delivered[node] {
                        continue;
                    }
                    if let Some(bits) = fs.corrupt_message(entry, NodeId(sub.node)) {
                        let i = (bits >> 8) as usize % sub.tuples.len();
                        sub.tuples[i].triple.o.0 ^= 1 << (bits & 63);
                    }
                }
            }
        }
        // Install-site integrity: a sub-batch that fails its
        // dispatch-time checksum must never reach the store. The
        // receiving shard enters quarantine — it stops installing and
        // reporting, so its local VTS pins exactly like a dead node's
        // and no firing advances past the poisoned point — until
        // rebuild-from-checkpoint replays the pristine logged batches.
        for sub in &subs {
            let node = sub.node as usize;
            if delivered[node] && !sub.verify() {
                let integrity = self.cluster.obs().integrity();
                integrity.inc_checksum_fail_message();
                tracer.marker(Marker::ChecksumFail, FiringId::NONE, sub.batch, node as u64);
                if !pl.quarantined[node] {
                    pl.quarantined[node] = true;
                    integrity.inc_quarantine();
                    tracer.anomaly(Marker::Quarantine, FiringId::NONE, sub.batch, node as u64);
                }
                delivered[node] = false;
            }
        }

        // Inject on every node, collecting per-node receipts and stats.
        // Each node applies only the key updates it owns; first-edge
        // events produce index-vertex updates that phase 2 routes to the
        // index key's owner (a triple's four key updates may live on
        // three different nodes).
        //
        // Dedup against each node's local VTS is a serial pre-pass (it
        // reads coordinator state); the per-node application itself runs
        // on the entry node's worker pool. Node ownership filters are
        // disjoint, so concurrent sub-batch application touches disjoint
        // shards, transient rings, and pending index updates — race-free
        // by construction, identical receipts for any thread count.
        let merge = self.clamped_merge(pl);
        let ts = batch.timestamp;
        let nodes = self.cluster.nodes();
        for sub in &subs {
            let node = sub.node as usize;
            if delivered[node] && pl.coordinator.already_inserted(node, s, ts) {
                // Redelivered while another node's outage stalls the
                // stable VTS: this node already holds the batch.
                self.cluster.obs().faults().inc_dedup_suppressed();
                delivered[node] = false;
            }
        }
        let inject_span = tracer.span(Stage::Injection, FiringId::NONE, bid);
        let applied = self.cluster.pool(entry).map(
            subs.iter().collect::<Vec<&wukong_stream::SubBatch>>(),
            |_, sub| {
                let node = sub.node;
                if !delivered[node as usize] {
                    return None;
                }
                let owns = self.cluster.shard_map().owner_filter(node);
                let shard = self.cluster.shard(node);
                let mut receipts: Vec<wukong_store::base::AppendReceipt> = Vec::new();
                let mut stats = InjectStats::default();
                let mut index_updates: Vec<(wukong_rdf::Key, wukong_rdf::Vid)> = Vec::new();
                let t0 = std::time::Instant::now();
                for t in sub.tuples.iter().filter(|t| t.is_timeless()) {
                    let tr = t.triple;
                    let out_key = tr.out_key();
                    if owns(out_key) {
                        shard.count_triple();
                        stats.timeless += 1;
                        let (off, first) = shard.append_owned(out_key, tr.o, sn, merge);
                        receipts.push(wukong_store::base::AppendReceipt {
                            key: out_key,
                            offset: off,
                        });
                        if first {
                            index_updates
                                .push((wukong_rdf::Key::index(tr.p, wukong_rdf::Dir::Out), tr.s));
                        }
                    }
                    let in_key = tr.in_key();
                    if owns(in_key) {
                        let (off, first) = shard.append_owned(in_key, tr.s, sn, merge);
                        receipts.push(wukong_store::base::AppendReceipt {
                            key: in_key,
                            offset: off,
                        });
                        if first {
                            index_updates
                                .push((wukong_rdf::Key::index(tr.p, wukong_rdf::Dir::In), tr.o));
                        }
                    }
                }
                // Timing tuples into the transient ring (owned entries
                // only). Only this task writes this node's ring.
                let timing: Vec<wukong_rdf::StreamTuple> = sub
                    .tuples
                    .iter()
                    .filter(|t| !t.is_timeless())
                    .copied()
                    .collect();
                stats.timing += timing.len();
                stream.transients[node as usize].write().push_batch(
                    wukong_store::TransientSlice::from_batch_filtered(ts, &timing, &owns),
                );
                stats.inject_ns += t0.elapsed().as_nanos() as u64;
                Some((receipts, stats, index_updates))
            },
        );
        let mut receipts: Vec<Vec<wukong_store::base::AppendReceipt>> = vec![Vec::new(); nodes];
        let mut stats: Vec<InjectStats> = vec![InjectStats::default(); nodes];
        let mut index_updates: Vec<(wukong_rdf::Key, wukong_rdf::Vid)> = Vec::new();
        for (sub, applied) in subs.iter().zip(applied) {
            if let Some((rc, st, iu)) = applied {
                let node = sub.node as usize;
                receipts[node] = rc;
                stats[node] = st;
                index_updates.extend(iu);
            }
        }

        // Phase 2: apply index-vertex updates on their owners. An owner
        // that did not receive the batch misses the update too — recovery
        // replays the whole batch, regenerating it.
        for (key, v) in index_updates {
            let node = self.cluster.shard_map().node_of_key(key);
            if !delivered[node as usize] {
                continue;
            }
            let t0 = std::time::Instant::now();
            let (off, _) = self.cluster.shard(node).append_owned(key, v, sn, merge);
            receipts[node as usize].push(wukong_store::base::AppendReceipt { key, offset: off });
            stats[node as usize].inject_ns += t0.elapsed().as_nanos() as u64;
        }
        drop(inject_span);

        // Build and install each node's stream-index batch.
        let index_span = tracer.span(Stage::StreamIndex, FiringId::NONE, bid);
        let results: Vec<(wukong_store::IndexBatch, InjectStats)> = receipts
            .iter()
            .zip(stats.iter())
            .enumerate()
            .map(|(node, (rc, st))| {
                let t0 = std::time::Instant::now();
                let ib = wukong_store::IndexBatch::from_receipts(ts, rc);
                if delivered[node] {
                    stream.indexes[node].write().push_batch(ib.clone());
                }
                let mut st = *st;
                st.index_ns += t0.elapsed().as_nanos() as u64;
                (ib, st)
            })
            .collect();
        drop(index_span);

        // Replication of index batches to subscriber nodes (§4.2): one
        // message per (origin, subscriber) pair carrying the entries.
        if self.cluster.replicate_indexes {
            let subscribers = stream.subscribers.read().clone();
            for (m, (ib, _)) in results.iter().enumerate() {
                if ib.entry_count() == 0 {
                    continue;
                }
                for &q in &subscribers {
                    if q as usize != m && fabric.is_up(NodeId(q)) {
                        fabric.charge_message(
                            NodeId(m as u16),
                            NodeId(q),
                            ib.heap_bytes(),
                            &mut scratch,
                        );
                    }
                }
            }
        }

        // Record this batch's staged breakdown under its stream's series.
        // Injection includes the fault-tolerance logging delay (it is
        // part of the injection path's latency, §6.8).
        let mut batch_trace = StageTrace::new();
        batch_trace.add(Stage::Dispatch, dispatch_ns);
        let logged_ns = if self.cfg.fault_tolerance {
            LOGGING_DELAY_NS
        } else {
            0
        };
        batch_trace.add(
            Stage::Injection,
            logged_ns + results.iter().map(|(_, st)| st.inject_ns).sum::<u64>(),
        );
        batch_trace.add(
            Stage::StreamIndex,
            results.iter().map(|(_, st)| st.index_ns).sum::<u64>(),
        );
        self.cluster
            .obs()
            .record_stream(&stream.schema.name, &batch_trace);

        // Coordinator bookkeeping: per-node insertion reports. A node
        // that never received the batch reports nothing — its local VTS
        // stalls, the stable VTS (elementwise min) stalls with it, and
        // visibility correctly excludes the partial insertion.
        for (node, (_, stats)) in results.into_iter().enumerate() {
            if !delivered[node] {
                continue;
            }
            pl.inject_stats[s].add(&stats);
            let ev = pl.coordinator.on_batch_inserted(node, s, ts);
            if let Some(upto) = ev.consolidate_upto {
                pl.merge_upto = Some(upto);
            }
        }

        // Periodic GC of this stream's transient slices and index batches.
        pl.batches_done[s] += 1;
        if pl.batches_done[s].is_multiple_of(self.cfg.gc_every_batches) {
            self.collect_garbage(pl, s);
        }
        // Advance the statistics epoch on the same deterministic cadence:
        // enough batches have landed that cached plans may be stale.
        if pl.batches_done[s].is_multiple_of(STATS_EPOCH_BATCHES) {
            self.stats_epoch.bump();
        }
    }

    fn collect_garbage(&self, pl: &Pipeline, s: usize) {
        let stable_ts = pl.coordinator.stable_vts().get(s);
        // With no registered query over the stream the expiry horizon is
        // undefined — keep everything (the transient ring's budget still
        // bounds memory) so a query registered later, or re-registered
        // after recovery, finds its window intact.
        let max_range = match self
            .registry
            .read()
            .iter()
            .filter(|r| !r.retired.load(Ordering::Relaxed) && r.stream_map.contains(&s))
            .map(|r| r.query.max_range_ms())
            .max()
        {
            Some(m) => m,
            None => return,
        };
        let expiry = gc::expiry_horizon(stable_ts, [max_range + self.cfg.gc_slack_ms]);
        let stream = self.cluster.stream(s);
        let t0 = std::time::Instant::now();
        let mut swept = gc::GcStats::default();
        for n in 0..self.cluster.nodes() {
            let mut transient = stream.transients[n].write();
            let mut index = stream.indexes[n].write();
            swept.absorb(gc::sweep(&mut transient, &mut index, expiry));
        }
        stream.gc_stats.write().absorb(swept);
        self.cluster.obs().record_stream_stage(
            &stream.schema.name,
            Stage::Gc,
            t0.elapsed().as_nanos() as u64,
        );
    }

    /// Registers a continuous query from C-SPARQL text.
    ///
    /// The query's `FROM <name> [RANGE … STEP …]` clauses must reference
    /// streams previously registered via [`WukongS::register_stream`]
    /// (matched by schema name).
    pub fn register_continuous(&self, text: &str) -> Result<ContinuousId, QueryError> {
        self.register_with_target(text, None)
    }

    /// Registers a continuous `CONSTRUCT` query whose firings instantiate
    /// the template and feed the derived stream `target` — C-SPARQL's
    /// stream-composition pattern: downstream queries consume `target`
    /// like any other stream.
    ///
    /// The emitted tuples carry the firing's window-end timestamp.
    pub fn register_construct(
        &self,
        text: &str,
        target: StreamId,
    ) -> Result<ContinuousId, QueryError> {
        if target.0 as usize >= self.cluster.stream_count() {
            return Err(QueryError::Unresolved(format!(
                "derived stream {target:?} is not registered"
            )));
        }
        self.register_with_target(text, Some(target))
    }

    fn register_with_target(
        &self,
        text: &str,
        target: Option<StreamId>,
    ) -> Result<ContinuousId, QueryError> {
        let query = parse_query(self.strings(), text)?;
        if target.is_some() && query.construct.is_empty() {
            return Err(QueryError::Unsupported(
                "register_construct needs a CONSTRUCT query".into(),
            ));
        }
        if query.kind != QueryKind::Continuous {
            return Err(QueryError::Unsupported(
                "use one_shot() for non-registered queries".into(),
            ));
        }
        if !query.touches_stream() {
            return Err(QueryError::Unsupported(
                "a continuous query must read at least one stream".into(),
            ));
        }

        // Resolve stream names against registered schemas.
        let streams = self.cluster.streams();
        let mut stream_map = Vec::with_capacity(query.streams.len());
        for (name, _) in &query.streams {
            let idx = streams
                .iter()
                .position(|s| s.schema.name == *name)
                .ok_or_else(|| QueryError::Unresolved(format!("stream {name}")))?;
            stream_map.push(idx);
        }

        // Home node: in-place execution dispatches a query to the node
        // owning its constant anchor ("Wukong+S mainly uses a single
        // thread on a single machine to handle a query", §5), so
        // selective queries complete without remote reads; unanchored
        // queries spread round-robin.
        let home = self.home_for(&query);
        for &s in &stream_map {
            self.cluster.stream(s).subscribers.write().insert(home.0);
        }

        // Window state anchored at the current stable position.
        let stable = {
            let pl = self.pipeline.lock();
            pl.coordinator.stable_vts().clone()
        };
        let registered_at = stream_map.iter().map(|&s| stable.get(s)).min().unwrap_or(0);
        let windows = query
            .streams
            .iter()
            .zip(&stream_map)
            .map(|((_, w), &s)| StreamWindow {
                stream: s,
                range_ms: w.range_ms,
                step_ms: w.step_ms,
            })
            .collect();

        let mut registry = self.registry.write();
        let id = registry.len();
        registry.push(Arc::new(Registered {
            text: text.to_owned(),
            query,
            stream_map,
            window: Mutex::new(WindowState::new(windows, registered_at)),
            home,
            plan: Mutex::new(None),
            retired: std::sync::atomic::AtomicBool::new(false),
            construct_target: target,
            last_emitted: Mutex::new(std::collections::HashSet::new()),
            delta: Mutex::new(None),
            feedback: Mutex::new(None),
        }));
        Ok(id)
    }

    /// Unregisters a continuous query: it stops firing, stops pinning GC
    /// horizons, and its home node drops stream-index subscriptions no
    /// other query of that node still needs.
    pub fn unregister_continuous(&self, id: ContinuousId) {
        let registry = self.registry.read();
        let Some(r) = registry.get(id) else { return };
        r.retired.store(true, Ordering::Relaxed);
        for &s in &r.stream_map {
            let still_needed = registry.iter().any(|other| {
                !other.retired.load(Ordering::Relaxed)
                    && other.home == r.home
                    && other.stream_map.contains(&s)
            });
            if !still_needed {
                self.cluster.stream(s).subscribers.write().remove(&r.home.0);
            }
        }
    }

    /// Number of live (non-retired) continuous queries.
    pub fn continuous_count(&self) -> usize {
        self.registry
            .read()
            .iter()
            .filter(|r| !r.retired.load(Ordering::Relaxed))
            .count()
    }

    /// The node a query executes on: the owner of its first constant
    /// anchor, or round-robin when nothing anchors it.
    fn home_for(&self, query: &Query) -> NodeId {
        for p in &query.patterns {
            for term in [p.s, p.o] {
                if let wukong_query::Term::Const(c) = term {
                    return NodeId(self.cluster.shard_map().node_of_vertex(c));
                }
            }
        }
        NodeId((self.next_home.fetch_add(1, Ordering::Relaxed) % self.cluster.nodes()) as u16)
    }

    /// Builds an execution context from a pre-taken visibility snapshot —
    /// lock-free, so pool workers never touch the pipeline lock.
    fn context_at(
        sn: wukong_store::SnapshotId,
        instances: &[(usize, Timestamp, Timestamp)],
    ) -> ExecContext {
        ExecContext {
            sn,
            windows: instances
                .iter()
                .map(|&(s, lo, hi)| WindowInstance {
                    stream: StreamId(s as u16),
                    lo,
                    hi,
                })
                .collect(),
        }
    }

    fn plan_for(&self, r: &Registered, ctx: &ExecContext) -> Plan {
        let mut cached = r.plan.lock();
        if let Some(p) = cached.as_ref() {
            return p.clone();
        }
        let access = NodeAccess::new(&self.cluster, r.home);
        let plan = if self.cfg.adaptive {
            let epoch = self.stats_epoch.current();
            match self.plan_cache.get(&r.text, epoch) {
                Some(p) => {
                    self.cluster.obs().plan().record_cache(true);
                    p
                }
                None => {
                    self.cluster.obs().plan().record_cache(false);
                    let p = plan_query(&r.query, &access, ctx);
                    self.plan_cache.insert(&r.text, epoch, p.clone());
                    p
                }
            }
        } else {
            plan_query(&r.query, &access, ctx)
        };
        if self.cfg.adaptive {
            *r.feedback.lock() = Some(PlanFeedback::for_plan(&plan));
        }
        *cached = Some(plan.clone());
        plan
    }

    /// The network cost model behind adaptive execution-mode selection:
    /// modeled nanoseconds of in-place remote reads vs fork-join
    /// scatter/gather for this plan, under [`EngineConfig::network`].
    ///
    /// In place, a `(nodes-1)/nodes` fraction of each step's estimated
    /// expansions lands on a remote shard and costs one one-sided read.
    /// Fork-join scatters each step's frontier to every node and gathers
    /// it back: two messages per node carrying that node's share of the
    /// rows. Both are *models* over the plan's frozen estimates, so the
    /// decision is deterministic and shared-nothing of wall clock.
    fn forkjoin_pays_off(&self, plan: &Plan) -> bool {
        let nodes = self.cluster.nodes() as u64;
        if nodes <= 1 {
            return false;
        }
        const ROW_BYTES: usize = 16;
        let net = &self.cfg.network;
        let mut inplace: u128 = 0;
        let mut forkjoin: u128 = 0;
        for s in &plan.steps {
            let est = s.estimate as u64;
            inplace += est as u128 * net.read_cost(ROW_BYTES) as u128 * (nodes as u128 - 1)
                / nodes as u128;
            let share = ((est as usize).saturating_mul(ROW_BYTES) / nodes as usize).max(ROW_BYTES);
            forkjoin += 2 * nodes as u128 * net.message_cost(share) as u128;
        }
        forkjoin < inplace
    }

    /// Executes `plan`, filling `fanout` with one `(input rows, output
    /// rows)` pair per step when the in-place executor ran (fork-join
    /// firings leave it empty — their per-partition fan-out is not
    /// comparable to the whole-plan estimates). Also records the modeled
    /// work metric (`edges_traversed`) for every in-place execution, so
    /// static and adaptive runs expose comparable plan-quality numbers.
    #[allow(clippy::too_many_arguments)]
    fn run_traced(
        &self,
        query: &Query,
        plan: &Plan,
        ctx: &ExecContext,
        home: NodeId,
        timer: &mut TaskTimer,
        trace: &mut StageTrace,
        fanout: &mut Vec<(u64, u64)>,
    ) -> ResultSet {
        let lit = StringLiteralResolver(self.strings());
        let forkjoin = match self.cfg.exec_mode {
            ExecMode::InPlace => false,
            ExecMode::ForkJoin => self.cluster.nodes() > 1,
            ExecMode::Auto => {
                if self.cfg.adaptive {
                    let fj = self.forkjoin_pays_off(plan);
                    self.cluster.obs().plan().record_mode(fj);
                    fj
                } else {
                    self.cluster.nodes() > 1
                        && (plan.has_index_scan()
                            || plan
                                .steps
                                .first()
                                .map(|s| s.estimate > 10_000)
                                .unwrap_or(false))
                }
            }
        };
        if forkjoin {
            fanout.clear();
            execute_forkjoin_traced(
                query,
                plan,
                ctx,
                &self.cluster,
                home,
                self.cfg.cores_per_query,
                &lit,
                timer,
                trace,
            )
        } else {
            let access = NodeAccess::new(&self.cluster, home);
            let results = wukong_query::execute_with_fanout(
                query, plan, ctx, &access, &lit, timer, trace, fanout,
            );
            let edges: u64 = fanout.iter().map(|&(_, out)| out).sum();
            self.cluster.obs().plan().record_edges(edges);
            results
        }
    }

    /// Executes a registered query over `instances` at the current stable
    /// snapshot (taken under the pipeline lock).
    fn execute_instances(
        &self,
        r: &Registered,
        class: &str,
        instances: &[(usize, Timestamp, Timestamp)],
    ) -> (ResultSet, f64, StageTrace) {
        let sn = self.pipeline.lock().coordinator.stable_sn();
        let (results, ms, trace, _) =
            self.execute_instances_at(r, class, instances, sn, FiringId::NONE);
        (results, ms, trace)
    }

    /// Executes a registered query over `instances` at snapshot `sn`,
    /// measuring window extraction (context + plan) inside the end-to-end
    /// timer and recording the staged trace under `class` in the obs
    /// registry. Safe to call from pool workers: everything it reads is
    /// either the pre-taken snapshot or interior-locked cluster state.
    fn execute_instances_at(
        &self,
        r: &Registered,
        class: &str,
        instances: &[(usize, Timestamp, Timestamp)],
        sn: wukong_store::SnapshotId,
        fid: FiringId,
    ) -> (ResultSet, f64, StageTrace, Vec<(u64, u64)>) {
        let tracer = Arc::clone(self.tracer());
        trace::with_recorder(&tracer, fid, BatchId::NONE, || {
            let mut timer = TaskTimer::start();
            let mut trace = StageTrace::new();
            let mut fanout = Vec::new();
            let t0 = timer.total_ns();
            let we_span = trace::scoped_span(Stage::WindowExtract);
            let ctx = Self::context_at(sn, instances);
            let plan = self.plan_for(r, &ctx);
            drop(we_span);
            trace.add(Stage::WindowExtract, timer.total_ns().saturating_sub(t0));
            let results = self.run_traced(
                &r.query,
                &plan,
                &ctx,
                r.home,
                &mut timer,
                &mut trace,
                &mut fanout,
            );
            let total_ns = timer.total_ns();
            self.cluster.obs().record_query(class, &trace, total_ns);
            (results, total_ns as f64 / 1e6, trace, fanout)
        })
    }

    /// Whether firings of `r` run under delta maintenance right now:
    /// the mode is on, the plan is incrementalizable, and no fault plan
    /// is installed (faults can drop or degrade a firing's reads, which
    /// must not poison retained state — recompute is self-healing).
    fn maintains(&self, r: &Registered) -> bool {
        self.cfg.incremental
            && self.cfg.fault_plan.is_none()
            && wukong_query::incrementalizable(&r.query)
    }

    /// Executes one maintained firing: retract the expired prefix of the
    /// retained rows, derive the inserted suffix from the delta slices,
    /// and finalize the state — instead of re-running the full scan/join.
    /// Must be called serially in window order (state chains firing to
    /// firing), which also makes it trivially worker-count independent.
    fn execute_incremental_at(
        &self,
        r: &Registered,
        class: &str,
        instances: &[(usize, Timestamp, Timestamp)],
        sn: wukong_store::SnapshotId,
        fid: FiringId,
    ) -> (ResultSet, f64, StageTrace, Vec<(u64, u64)>) {
        let tracer = Arc::clone(self.tracer());
        trace::with_recorder(&tracer, fid, BatchId::NONE, || {
            let mut timer = TaskTimer::start();
            let mut trace = StageTrace::new();
            let t0 = timer.total_ns();
            let we_span = trace::scoped_span(Stage::WindowExtract);
            let ctx = Self::context_at(sn, instances);
            let plan = self.plan_for(r, &ctx);
            drop(we_span);
            trace.add(Stage::WindowExtract, timer.total_ns().saturating_sub(t0));
            let access = NodeAccess::new(&self.cluster, r.home);
            let lit = StringLiteralResolver(self.strings());
            // Registered RANGE per query-local stream, in window order — the
            // instance spans can be clamped at the stream epoch and must not
            // shorten row expiry.
            let ranges: Vec<Timestamp> = r
                .window
                .lock()
                .windows()
                .iter()
                .map(|w| w.range_ms)
                .collect();
            let (results, stats) = {
                let mut state = r.delta.lock();
                wukong_query::incremental::maintain(
                    &r.query, &plan, &mut state, &ctx, &ranges, &access, &lit, &mut timer,
                    &mut trace,
                )
            };
            self.cluster.obs().incremental().record_maintained(
                stats.rebuilt,
                stats.rows_reused,
                stats.rows_recomputed,
                stats.rows_retracted,
            );
            let total_ns = timer.total_ns();
            self.cluster.obs().record_query(class, &trace, total_ns);
            // Maintained firings never run the full step loop; drift is
            // observed through probes instead (see `probe_fanout`).
            (results, total_ns as f64 / 1e6, trace, Vec::new())
        })
    }

    /// Synthesizes a feedback observation for a maintained firing by
    /// probing the store for each step's *current* anchor cardinality —
    /// delta maintenance skips the step loop, so probing is the only way
    /// estimate drift stays observable. Constant anchors and index scans
    /// probe the same keys the planner estimated (index probes apply the
    /// planner's 4× multiplier so an unchanged store reads as on-model);
    /// variable-anchored steps have no probeable key and report no
    /// observation (`(0, 0)` is skipped by the detector).
    fn probe_fanout(
        &self,
        r: &Registered,
        instances: &[(usize, Timestamp, Timestamp)],
        sn: wukong_store::SnapshotId,
    ) -> Vec<(u64, u64)> {
        let plan = match r.plan.lock().clone() {
            Some(p) => p,
            None => return Vec::new(),
        };
        let ctx = Self::context_at(sn, instances);
        let access = NodeAccess::new(&self.cluster, r.home);
        plan.steps
            .iter()
            .map(|step| {
                let p = &step.pattern;
                let probe = |key: Key| access.estimate(key, p.graph, &ctx) as u64;
                match step.mode {
                    StepMode::FromSubject => match p.s {
                        wukong_query::Term::Const(c) => (1, probe(Key::new(c, p.p, Dir::Out))),
                        wukong_query::Term::Var(_) => (0, 0),
                    },
                    StepMode::FromObject => match p.o {
                        wukong_query::Term::Const(c) => (1, probe(Key::new(c, p.p, Dir::In))),
                        wukong_query::Term::Var(_) => (0, 0),
                    },
                    StepMode::IndexScan => {
                        (1, probe(Key::index(p.p, Dir::Out)).max(1).saturating_mul(4))
                    }
                }
            })
            .collect()
    }

    /// Feeds one firing's fan-out into `r`'s drift detector. Returns
    /// `true` when the detector trips (the caller re-plans). Serialized
    /// by the caller in window order, so trip points are deterministic.
    fn observe_feedback(&self, r: &Registered, fanout: &[(u64, u64)]) -> bool {
        if fanout.is_empty() {
            return false;
        }
        let mut guard = r.feedback.lock();
        let Some(fb) = guard.as_mut() else {
            return false;
        };
        let before = fb.drifted_firings();
        let trip = fb.observe(fanout, &self.cfg.drift);
        self.cluster
            .obs()
            .plan()
            .record_feedback(fb.drifted_firings() > before);
        trip
    }

    /// Re-derives `r`'s plan against current statistics (a drift trip, or
    /// the [`WukongS::force_replan`] test hook). The new plan lands in
    /// the cache at the current epoch, feedback restarts clean, and any
    /// retained delta state is dropped — the next maintained firing
    /// rebuilds under the new plan, recomputing PR-4 death timestamps
    /// from the same contributing edges, so the firing sequence is
    /// unchanged. The re-planning pause is traced as [`Stage::Replan`]
    /// under the query's class, outside any firing's end-to-end latency.
    fn replan(&self, r: &Registered, ctx: &ExecContext, class: &str, fid: FiringId) {
        let t0 = std::time::Instant::now();
        let access = NodeAccess::new(&self.cluster, r.home);
        let plan = plan_query(&r.query, &access, ctx);
        self.plan_cache
            .insert(&r.text, self.stats_epoch.current(), plan.clone());
        *r.feedback.lock() = Some(PlanFeedback::for_plan(&plan));
        *r.plan.lock() = Some(plan);
        {
            let mut delta = r.delta.lock();
            if delta.is_some() {
                *delta = None;
                self.cluster.obs().plan().record_delta_rebuild();
            }
        }
        let obs = self.cluster.obs();
        obs.plan().record_replan();
        obs.record_query_stage(class, Stage::Replan, t0.elapsed().as_nanos() as u64);
        // A drift trip is an anomaly worth a black box: the dump carries
        // the firing whose feedback tripped it (NONE for forced re-plans).
        self.tracer().anomaly(Marker::Replan, fid, BatchId::NONE, 0);
    }

    /// Forces an immediate re-plan of registered query `id` against the
    /// current stable snapshot — the hook behind the planner equivalence
    /// battery: a mid-stream plan switch must not change any subsequent
    /// firing. Works regardless of [`EngineConfig::adaptive`].
    pub fn force_replan(&self, id: ContinuousId) {
        let r = Arc::clone(&self.registry.read()[id]);
        if r.retired.load(Ordering::Relaxed) {
            return;
        }
        let (stable, sn) = {
            let pl = self.pipeline.lock();
            pl.coordinator.visibility()
        };
        let instances: Vec<(usize, Timestamp, Timestamp)> = r
            .window
            .lock()
            .windows()
            .iter()
            .map(|w| {
                let hi = stable.get(w.stream);
                (w.stream, hi.saturating_sub(w.range_ms) + 1, hi)
            })
            .collect();
        let ctx = Self::context_at(sn, &instances);
        let class = Self::query_class(&r, id);
        self.replan(&r, &ctx, &class, FiringId::NONE);
    }

    /// The engine's plan cache (hit/miss counters, for tests/reports).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The current store-statistics epoch.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch.current()
    }

    /// The batch-grid lineage of one firing: every sealed batch a fired
    /// window consumed, enumerated as the multiples of each stream's
    /// batch interval inside `[lo, hi]`. Batch IDs are a pure function of
    /// `(stream, timestamp)`, so the lineage is exact without retaining
    /// any per-batch state — and identical across recovery replays.
    fn lineage_of(&self, instances: &[(usize, Timestamp, Timestamp)]) -> Vec<BatchId> {
        let mut out = Vec::new();
        for &(s, lo, hi) in instances {
            let interval = self.cluster.stream(s).schema.batch_interval_ms.max(1);
            let mut ts = lo.div_ceil(interval) * interval;
            while ts <= hi {
                out.push(BatchId::mint(s as u16, ts));
                // One past the cap is enough for `mint_firing` to set the
                // truncation flag; no point enumerating further.
                if out.len() > TraceRecorder::LINEAGE_CAP {
                    return out;
                }
                ts += interval;
            }
        }
        out
    }

    fn query_class(r: &Registered, id: ContinuousId) -> String {
        r.query
            .name
            .clone()
            .unwrap_or_else(|| format!("query-{id}"))
    }

    /// Fires every continuous query whose next windows are covered by the
    /// stable VTS — the data-driven execution model (§4.3).
    ///
    /// Queries fire in registration order (CONSTRUCT-derived data feeds
    /// downstream consumers deterministically), but one query's batch of
    /// ready windows executes *in parallel* on its home node's worker
    /// pool, all against the same visibility snapshot. Firing order,
    /// result rows, and CONSTRUCT emissions are identical for any
    /// `worker_threads` value (DESIGN.md §9).
    pub fn fire_ready(&self) -> Vec<Firing> {
        let (stable, quarantined) = {
            let pl = self.pipeline.lock();
            (
                pl.coordinator.stable_vts().clone(),
                Self::quarantined_of(&pl),
            )
        };
        let registry: Vec<Arc<Registered>> = self.registry.read().clone();
        let mut out = Vec::new();
        for (id, r) in registry.iter().enumerate() {
            if r.retired.load(Ordering::Relaxed) {
                continue;
            }
            // Gather every window batch this query can fire, each tagged
            // with its *assigned* snapshot — the epoch the SN-VTS plan
            // gave the window's end, not the stable SN of the moment the
            // firing happens to run. Faults delay firings; executing at
            // the fire-time snapshot would make rows depend on *when* the
            // window fired (more data visible at a later SN), a silent
            // divergence no marker explains. Assigned-snapshot execution
            // makes every firing's rows a pure function of the window
            // (DESIGN.md §13). A window whose epoch has not retired yet
            // is held for a later round: its snapshot is still being
            // inserted, so reading it would race the injectors.
            let batch: AssignedBatch = {
                let pl = self.pipeline.lock();
                let cur_sn = pl.coordinator.stable_sn();
                let mut w = r.window.lock();
                let mut b = Vec::new();
                while w.ready(&stable) {
                    let hi = w.next_fire();
                    let sn_w = w
                        .windows()
                        .iter()
                        .filter_map(|sw| pl.coordinator.snapshot_at(sw.stream, hi))
                        .max()
                        .unwrap_or(cur_sn);
                    if sn_w > cur_sn {
                        // Window held: its assigned epoch has not retired
                        // yet. A point marker records the hold so stalled
                        // firings are visible in the flight recorder.
                        self.tracer()
                            .marker(Marker::Hold, FiringId::NONE, BatchId::NONE, sn_w.0);
                        break;
                    }
                    b.push((w.fire(), sn_w));
                }
                b
            };
            if batch.is_empty() {
                continue;
            }
            let class = Self::query_class(r, id);
            let maintained = self.maintains(r);
            // Mint causal firing IDs serially, in window order, before
            // any parallel execution — IDs (and dump lineage) are
            // deterministic at every worker count. Minting happens even
            // with tracing off so results never depend on the flag.
            let tracer = Arc::clone(self.tracer());
            let batch: Vec<MintedFiring> = batch
                .into_iter()
                .map(|(instances, sn_w)| {
                    let windows: Vec<(u16, u64, u64)> = instances
                        .iter()
                        .map(|&(s, lo, hi)| (s as u16, lo, hi))
                        .collect();
                    let lineage = self.lineage_of(&instances);
                    let fid = tracer.mint_firing(&class, windows, sn_w.0, lineage);
                    (instances, sn_w, fid)
                })
                .collect();
            let executed: Vec<_> = if maintained {
                // Delta maintenance chains state from window to window,
                // so a maintained query's batch runs serially in window
                // order — identical at any worker count.
                batch
                    .into_iter()
                    .map(|(instances, sn_w, fid)| {
                        let run = self.execute_incremental_at(r, &class, &instances, sn_w, fid);
                        (instances, sn_w, fid, run)
                    })
                    .collect()
            } else {
                if self.cfg.incremental {
                    // The mode is on but this query recomputes (plan not
                    // incrementalizable, or a fault plan is installed).
                    let inc = self.cluster.obs().incremental();
                    batch.iter().for_each(|_| inc.record_fallback());
                }
                self.cluster
                    .pool(r.home)
                    .map(batch, |_, (instances, sn_w, fid)| {
                        let run = self.execute_instances_at(r, &class, &instances, sn_w, fid);
                        (instances, sn_w, fid, run)
                    })
            };
            // CONSTRUCT feeding, firing emission, and cardinality
            // feedback stay serialized on the coordinator side, in
            // window order — feedback order (and thus every re-plan
            // point) is independent of the worker count.
            let mut replanned_in_batch = false;
            for (instances, sn_w, fid, (mut results, latency_ms, stages, fanout)) in executed {
                let window_end = instances.first().map(|i| i.2).unwrap_or(0);
                if self.cfg.adaptive && !replanned_in_batch {
                    // Firings executed after a mid-batch re-plan still
                    // ran the *old* plan; observing them against the new
                    // estimates would be meaningless, so feedback skips
                    // the rest of this batch.
                    let observed = if maintained {
                        self.probe_fanout(r, &instances, sn_w)
                    } else {
                        fanout
                    };
                    if self.observe_feedback(r, &observed) {
                        let ctx = Self::context_at(sn_w, &instances);
                        self.replan(r, &ctx, &class, fid);
                        replanned_in_batch = true;
                    }
                }
                self.degrade_and_track(&instances, &mut results, latency_ms, fid);
                self.tracer().debug_assert_depth_zero(&class);
                // CONSTRUCT firings feed their derived stream with
                // IStream semantics: only rows new relative to the
                // previous firing are instantiated, so sliding windows do
                // not re-emit their overlap.
                if let Some(target) = r.construct_target {
                    let mut seen = r.last_emitted.lock();
                    let current: std::collections::HashSet<Vec<wukong_rdf::Vid>> =
                        results.rows.iter().cloned().collect();
                    for row in results.rows.iter().filter(|row| !seen.contains(*row)) {
                        for t in &r.query.construct {
                            let resolve = |term: wukong_query::Term| match term {
                                wukong_query::Term::Const(c) => Some(c),
                                wukong_query::Term::Var(v) => {
                                    let col = r
                                        .query
                                        .select
                                        .iter()
                                        .position(|&s| s == v)
                                        .expect("template vars are selected");
                                    let val = row[col];
                                    (val.0 != u64::MAX).then_some(val)
                                }
                            };
                            if let (Some(ts), Some(to)) = (resolve(t.s), resolve(t.o)) {
                                self.ingest(target, Triple::new(ts, t.p, to), window_end);
                            }
                        }
                    }
                    *seen = current;
                }
                if !quarantined.is_empty() {
                    // Containment marker: the firing executed against a
                    // visibility snapshot pinned below every quarantined
                    // shard's poisoned point, and says so (DESIGN.md §13).
                    results.quarantined_shards = quarantined.clone();
                }
                out.push(Firing {
                    query: id,
                    name: r.query.name.clone(),
                    window_end,
                    results,
                    latency_ms,
                    stages,
                });
            }
        }
        out
    }

    /// Exact staleness accounting for one firing: if any consumed window
    /// covers a batch the shedder dropped tuples from (and has not yet
    /// replayed), the firing's result carries a `degraded` marker with
    /// the precise shed count and window tally. Also advances the
    /// latency-miss streak of the degradation state machine — the only
    /// wall-clock input, and it only ever *opens* shedding (admission
    /// control), never drives a shed decision, so determinism holds.
    fn degrade_and_track(
        &self,
        instances: &[(usize, Timestamp, Timestamp)],
        results: &mut ResultSet,
        latency_ms: f64,
        fid: FiringId,
    ) {
        let mut pl = self.pipeline.lock();
        let mut tuples_shed = 0u64;
        let mut windows_affected = 0u32;
        let mut windows_aged = 0u32;
        for &(s, lo, hi) in instances {
            let n = pl.shedder.outstanding_in(StreamId(s as u16), lo, hi);
            if n > 0 {
                tuples_shed += n;
                windows_affected += 1;
            }
            // Aging: a window that reaches below any node's transient
            // eviction watermark fired too far behind stream time (an
            // outage, a recovery replay, a clock jump) and may be
            // missing aged-out rows. On-cadence firings never trip this
            // — GC keeps `gc_slack_ms` of headroom behind the widest
            // window — so the marker singles out exactly the delayed
            // firings whose retention ran out.
            let stream = self.cluster.stream(s);
            if (0..self.cluster.nodes()).any(|n| stream.transients[n].read().evicted_upto() > lo) {
                windows_aged += 1;
            }
        }
        if tuples_shed > 0 || windows_aged > 0 {
            results.degraded = Some(Degraded {
                tuples_shed,
                windows_affected,
                windows_aged,
            });
            self.cluster.obs().overload().inc_degraded_firing();
        }
        // The latency-miss streak may *open* shedding, which only makes
        // sense when an ingest budget bounds what shedding admits — an
        // unbudgeted engine marks degradation but never sheds.
        if self.cfg.ingest_budget.is_none() {
            return;
        }
        if latency_ms > self.cfg.overload.latency_budget_ms {
            pl.miss_streak += 1;
            // Deadline degradation: the firing overran its latency
            // budget. The anomaly's dump links the firing's full lineage
            // so the slow path is reconstructible after the fact.
            self.tracer().anomaly(
                Marker::DeadlineMiss,
                fid,
                BatchId::NONE,
                (latency_ms * 1_000.0) as u64,
            );
            if pl.miss_streak >= self.cfg.overload.trip_after_misses
                && pl.overload == OverloadState::Normal
            {
                pl.overload = OverloadState::Shedding;
                pl.tripped_at = Some(Self::stream_now(&pl));
                self.cluster.obs().overload().inc_state_transition();
            }
        } else {
            pl.miss_streak = 0;
        }
    }

    /// The degradation state machine's current state.
    pub fn overload_state(&self) -> OverloadState {
        self.pipeline.lock().overload
    }

    /// The append-only shed log — the determinism witness: same seed,
    /// same spike ⇒ byte-identical logs across runs and worker counts.
    pub fn shed_log(&self) -> Vec<ShedRecord> {
        self.pipeline.lock().shedder.log().to_vec()
    }

    /// Total tuples ever shed (including any later replayed).
    pub fn total_shed(&self) -> u64 {
        self.pipeline.lock().shedder.total_shed()
    }

    /// Shed tuples not yet restored by a catch-up replay — the exact
    /// staleness currently visible to degraded firings.
    pub fn shed_outstanding(&self) -> u64 {
        self.pipeline.lock().shedder.outstanding_total()
    }

    fn quarantined_of(pl: &Pipeline) -> Vec<u16> {
        pl.quarantined
            .iter()
            .enumerate()
            .filter(|(_, &q)| q)
            .map(|(n, _)| n as u16)
            .collect()
    }

    /// Shards currently quarantined by an install-site checksum failure
    /// (DESIGN.md §13). A quarantined shard installs and reports nothing
    /// — its local VTS pins like a dead node's — until
    /// rebuild-from-checkpoint clears it.
    pub fn quarantined_nodes(&self) -> Vec<u16> {
        Self::quarantined_of(&self.pipeline.lock())
    }

    /// The invariant scrubber (DESIGN.md §13): re-checks, between
    /// firings, invariants the design argues hold by construction —
    /// per-node VTS monotonicity since the previous scrub, the stable
    /// VTS never ahead of the element-wise minimum of the local VTS, the
    /// ingest conservation ledger (`ingested = installed + pending +
    /// shed`), and every maintained query's death-timestamp bound
    /// (`death > hi` for each retained row). Violations are returned and
    /// counted into [`wukong_obs::IntegrityCounters`]; a clean engine
    /// reports none under any fault schedule.
    pub fn scrub(&self) -> Vec<ScrubViolation> {
        let mut out = Vec::new();
        {
            let mut pl = self.pipeline.lock();
            let nodes = self.cluster.nodes();
            for n in 0..nodes {
                let now = pl.coordinator.local_vts(n).entries().to_vec();
                for (s, (&was, &cur)) in pl.scrub_last[n].iter().zip(&now).enumerate() {
                    if cur < was {
                        out.push(ScrubViolation::VtsRegression {
                            node: n as u16,
                            stream: s as u16,
                            was,
                            now: cur,
                        });
                    }
                }
                pl.scrub_last[n] = now;
            }
            for s in 0..pl.coordinator.streams() {
                let stable = pl.coordinator.stable_vts().get(s);
                let min_local = (0..nodes)
                    .map(|n| pl.coordinator.local_vts(n).get(s))
                    .min()
                    .unwrap_or(stable);
                if stable > min_local {
                    out.push(ScrubViolation::StableAhead {
                        stream: s as u16,
                        stable,
                        min_local,
                    });
                }
            }
            let pending: u64 = pl
                .pending
                .iter()
                .flat_map(|q| q.iter())
                .map(|b| b.tuples.len() as u64)
                .sum();
            let shed = pl.shedder.total_shed();
            if pl.ledger_in != pl.ledger_installed + pending + shed {
                out.push(ScrubViolation::ConservationMismatch {
                    ingested: pl.ledger_in,
                    installed: pl.ledger_installed,
                    pending,
                    shed,
                });
            }
        }
        // Death bounds read per-query delta state outside the pipeline
        // lock (same order the firing path takes them).
        for r in self.registry.read().iter() {
            if r.retired.load(Ordering::Relaxed) {
                continue;
            }
            let delta = r.delta.lock();
            let Some(st) = delta.as_ref() else { continue };
            let hi = st.windows().iter().map(|w| w.hi).max().unwrap_or(0);
            let rows = st.rows();
            for i in 0..rows.len() {
                if rows.death(i) <= hi {
                    out.push(ScrubViolation::DeathBound {
                        query: r
                            .query
                            .name
                            .clone()
                            .unwrap_or_else(|| "<unnamed>".to_string()),
                        death: rows.death(i),
                        hi,
                    });
                }
            }
        }
        if !out.is_empty() {
            self.cluster
                .obs()
                .integrity()
                .add_scrub_violations(out.len() as u64);
            // Scrub violations reuse the checksum-failure anomaly class:
            // both are state-integrity breaches, and the dump captures
            // whatever the recorder saw leading up to the breach.
            self.tracer().anomaly(
                Marker::ChecksumFail,
                FiringId::NONE,
                BatchId::NONE,
                out.len() as u64,
            );
        }
        out
    }

    /// Executes a registered query once against its *current* windows
    /// without advancing its firing cursor — the building block of the
    /// throughput experiments, where emulated clients re-execute shared
    /// query classes as fast as the engine allows (§6.6).
    /// Executing a retired query returns an empty result.
    pub fn execute_registered(&self, id: ContinuousId) -> (ResultSet, f64) {
        let r = Arc::clone(&self.registry.read()[id]);
        if r.retired.load(Ordering::Relaxed) {
            return (ResultSet::empty(Vec::new()), 0.0);
        }
        let stable = {
            let pl = self.pipeline.lock();
            pl.coordinator.stable_vts().clone()
        };
        let instances: Vec<(usize, Timestamp, Timestamp)> = r
            .window
            .lock()
            .windows()
            .iter()
            .map(|w| {
                let hi = stable.get(w.stream);
                (w.stream, hi.saturating_sub(w.range_ms) + 1, hi)
            })
            .collect();
        let class = Self::query_class(&r, id);
        let (results, ms, _) = self.execute_instances(&r, &class, &instances);
        (results, ms)
    }

    /// Runs a one-shot query immediately over the stable snapshot.
    ///
    /// One-shot queries normally read only the stored graph; a one-shot
    /// may however declare stream windows (`FROM <stream> [RANGE … STEP …]`)
    /// to read the *current* window of a stream once — the time-scoped
    /// one-shot of the paper's footnote 10 (Time-ontology support). Such
    /// windows end at the stream's stable VTS entry.
    pub fn one_shot(&self, text: &str) -> Result<(ResultSet, f64), QueryError> {
        let query = parse_query(self.strings(), text)?;
        if query.kind != QueryKind::OneShot {
            return Err(QueryError::Unsupported(
                "use register_continuous() for REGISTER QUERY".into(),
            ));
        }

        let (sn, windows, quarantined) = {
            let pl = self.pipeline.lock();
            // Admission control: while the engine sheds load, one-shot
            // work is turned away before continuous queries degrade —
            // one-shots have no freshness contract and can retry later
            // (DESIGN.md §11). Unbounded engines never reject.
            if self.cfg.ingest_budget.is_some() && pl.overload != OverloadState::Normal {
                self.cluster.obs().overload().inc_admission_rejected();
                return Err(QueryError::Overloaded(
                    "the engine is shedding load; retry after catch-up".into(),
                ));
            }
            let sn = pl.coordinator.stable_sn();
            let quarantined = Self::quarantined_of(&pl);
            if query.streams.is_empty() {
                if query.touches_stream() {
                    return Err(QueryError::MissingWindow(
                        "one-shot GRAPH <stream> patterns need FROM windows".into(),
                    ));
                }
                (sn, Vec::new(), quarantined)
            } else {
                // Resolve stream names and build windows at the stable VTS.
                let streams = self.cluster.streams();
                let mut windows = Vec::with_capacity(query.streams.len());
                for (name, spec) in &query.streams {
                    let idx = streams
                        .iter()
                        .position(|s| s.schema.name == *name)
                        .ok_or_else(|| QueryError::Unresolved(format!("stream {name}")))?;
                    let hi = pl.coordinator.stable_vts().get(idx);
                    windows.push(WindowInstance {
                        stream: StreamId(idx as u16),
                        lo: hi.saturating_sub(spec.range_ms) + 1,
                        hi,
                    });
                }
                (sn, windows, quarantined)
            }
        };
        let ctx = ExecContext { sn, windows };
        let home = self.home_for(&query);
        let mut timer = TaskTimer::start();
        let mut trace = StageTrace::new();
        let t0 = timer.total_ns();
        let access = NodeAccess::new(&self.cluster, home);
        let plan = if self.cfg.adaptive {
            // One-shot bursts re-submit textually identical queries many
            // times per second; within one statistics epoch the cached
            // plan is what the planner would rebuild, and results are
            // plan-independent either way.
            let epoch = self.stats_epoch.current();
            match self.plan_cache.get(text, epoch) {
                Some(p) => {
                    self.cluster.obs().plan().record_cache(true);
                    p
                }
                None => {
                    self.cluster.obs().plan().record_cache(false);
                    let p = plan_query(&query, &access, &ctx);
                    self.plan_cache.insert(text, epoch, p.clone());
                    p
                }
            }
        } else {
            plan_query(&query, &access, &ctx)
        };
        trace.add(Stage::WindowExtract, timer.total_ns().saturating_sub(t0));
        let mut fanout = Vec::new();
        let mut results = self.run_traced(
            &query,
            &plan,
            &ctx,
            home,
            &mut timer,
            &mut trace,
            &mut fanout,
        );
        if !quarantined.is_empty() {
            results.quarantined_shards = quarantined;
        }
        let total_ns = timer.total_ns();
        let class = query.name.clone().unwrap_or_else(|| "one-shot".to_string());
        self.cluster.obs().record_query(&class, &trace, total_ns);
        Ok((results, total_ns as f64 / 1e6))
    }

    /// Runs a batch of independent one-shot queries on node 0's worker
    /// pool. Each query takes its own visibility snapshot exactly as
    /// [`WukongS::one_shot`] does, but with no stream batches arriving
    /// between queries (the caller holds the timeline) every member sees
    /// the same stable SN, and the result vector is ordered like `texts`
    /// regardless of `worker_threads`.
    pub fn one_shot_batch(&self, texts: &[&str]) -> Vec<Result<(ResultSet, f64), QueryError>> {
        self.cluster
            .pool(NodeId(0))
            .map(texts.to_vec(), |_, text| self.one_shot(text))
    }

    /// The stable snapshot number (what one-shot queries read).
    pub fn stable_sn(&self) -> wukong_store::SnapshotId {
        self.pipeline.lock().coordinator.stable_sn()
    }

    /// The stable VTS entry for `stream` (continuous-query visibility).
    pub fn stable_ts(&self, stream: StreamId) -> Timestamp {
        self.pipeline
            .lock()
            .coordinator
            .stable_vts()
            .get(stream.0 as usize)
    }

    /// Accumulated injection statistics and batch count for `stream`
    /// (Table 6).
    pub fn injection_stats(&self, stream: StreamId) -> (InjectStats, u64) {
        let pl = self.pipeline.lock();
        (
            pl.inject_stats[stream.0 as usize],
            pl.batches_done[stream.0 as usize],
        )
    }

    /// A consolidated operational snapshot of the deployment.
    pub fn stats(&self) -> DeploymentStats {
        let pl = self.pipeline.lock();
        let mut stream_index_bytes = 0;
        let mut transient_bytes = 0;
        let mut raw_stream_bytes = 0;
        for s in self.cluster.streams() {
            stream_index_bytes += s.index_bytes();
            transient_bytes += s.transient_bytes();
            raw_stream_bytes += *s.raw_bytes.read() as usize;
        }
        DeploymentStats {
            nodes: self.cluster.nodes(),
            streams: self.cluster.stream_count(),
            continuous_queries: self.registry.read().len(),
            stored_triples: self.cluster.triple_count(),
            store_bytes: self.cluster.store_bytes(),
            stream_index_bytes,
            transient_bytes,
            raw_stream_bytes,
            stable_sn: pl.coordinator.stable_sn(),
            batches_processed: pl.batches_done.iter().sum(),
            fabric: self.cluster.fabric().metrics(),
        }
    }

    /// Takes a checkpoint: registered queries, per-node VTS, and every
    /// batch since the previous checkpoint. Returns the encoded bytes
    /// (also retained internally for [`WukongS::recover`]).
    pub fn checkpoint(&self) -> Bytes {
        let mut pl = self.pipeline.lock();
        let cp = Checkpoint {
            local_vts: (0..self.cluster.nodes())
                .map(|n| pl.coordinator.local_vts(n).entries().to_vec())
                .collect(),
            queries: self
                .registry
                .read()
                .iter()
                .filter(|r| !r.retired.load(Ordering::Relaxed))
                .map(|r| LoggedQuery {
                    text: r.text.clone(),
                    construct_target: r.construct_target.map(|t| t.0),
                })
                .collect(),
            batches: std::mem::take(&mut pl.log),
        };
        let bytes = cp.encode();
        self.checkpoints.lock().push(bytes.clone());
        bytes
    }

    /// All checkpoints taken so far.
    pub fn checkpoints(&self) -> Vec<Bytes> {
        self.checkpoints.lock().clone()
    }

    /// Like [`WukongS::checkpoint`] but *non-draining*: encodes every
    /// batch logged since the last drained checkpoint while leaving the
    /// internal log untouched. This is the durable state a crash sees —
    /// the about-to-die engine is never told anything happened.
    pub fn tail_checkpoint(&self) -> Bytes {
        let pl = self.pipeline.lock();
        let cp = Checkpoint {
            local_vts: (0..self.cluster.nodes())
                .map(|n| pl.coordinator.local_vts(n).entries().to_vec())
                .collect(),
            queries: self
                .registry
                .read()
                .iter()
                .filter(|r| !r.retired.load(Ordering::Relaxed))
                .map(|r| LoggedQuery {
                    text: r.text.clone(),
                    construct_target: r.construct_target.map(|t| t.0),
                })
                .collect(),
            batches: pl.log.clone(),
        };
        cp.encode()
    }

    /// Rebuilds a deployment after a failure: reload the initial data,
    /// re-register the streams, replay the checkpoints in order, then
    /// re-register the continuous queries and catch their windows up to
    /// the restored stable VTS (at-least-once: the window *at* the
    /// horizon may re-fire, §5).
    pub fn recover(
        cfg: EngineConfig,
        base: impl IntoIterator<Item = Triple>,
        schemas: Vec<StreamSchema>,
        strings: &Arc<StringServer>,
        checkpoints: &[Bytes],
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        Self::recover_with_report(cfg, base, schemas, strings, checkpoints).map(|(e, _)| e)
    }

    /// [`WukongS::recover`] plus a [`RecoveryReport`] of what the replay
    /// did; the end-to-end wall time is also recorded under the
    /// `recovery` series of the new deployment's obs registry.
    pub fn recover_with_report(
        cfg: EngineConfig,
        base: impl IntoIterator<Item = Triple>,
        schemas: Vec<StreamSchema>,
        strings: &Arc<StringServer>,
        checkpoints: &[Bytes],
    ) -> Result<(Self, RecoveryReport), crate::checkpoint::CheckpointError> {
        let t0 = std::time::Instant::now();
        // Share the original string server: IDs in checkpoints refer to it
        // (in production it is reloaded as part of the initial dataset).
        let engine = WukongS::with_strings(cfg, Arc::clone(strings));
        let recovery_span = engine
            .tracer()
            .span(Stage::Recovery, FiringId::NONE, BatchId::NONE);
        engine.load_base(base);
        for schema in schemas {
            engine.register_stream(schema);
        }
        let mut report = RecoveryReport::default();
        let before = engine.cluster.obs().faults().snapshot();

        // Re-register the continuous queries *before* replaying data so
        // the garbage collector's expiry horizons respect their windows
        // (the query-registration log is replayed first, §5).
        let mut registered: Vec<String> = Vec::new();
        // The stable VTS the crashed engine had actually reached, as
        // persisted in the last checkpoint's per-node entries. Replay may
        // push the *new* stable VTS far beyond it (a dead node's stall
        // disappears once every replayed batch lands on live nodes), and
        // catching windows up to the replayed VTS would silently skip
        // every firing the outage had delayed — a lost-firing bug.
        let mut cp_stable: Option<Vts> = None;
        // Per-stream high-water mark of replayed batch timestamps, for
        // re-synthesizing coalesced clock jumps (below).
        let mut replay_high: Vec<Timestamp> = Vec::new();
        for bytes in checkpoints {
            let cp = Checkpoint::decode(bytes)?;
            for q in &cp.queries {
                if !registered.contains(&q.text) {
                    engine
                        .register_with_target(&q.text, q.construct_target.map(StreamId))
                        .expect("checkpointed query re-parses");
                    registered.push(q.text.clone());
                    report.replayed_queries += 1;
                }
            }
            if !cp.local_vts.is_empty() {
                let locals: Vec<Vts> = cp
                    .local_vts
                    .iter()
                    .map(|e| Vts::from_entries(e.clone()))
                    .collect();
                cp_stable = Some(Vts::stable(locals.iter()));
            }
            let mut pl = engine.pipeline.lock();
            for lb in cp.batches {
                // The log is the complete sealed-batch sequence, so a
                // hole between consecutive logged timestamps proves the
                // adaptor sealed nothing in between — it coalesced the
                // gap into a clock jump. The jump itself is adaptor
                // runtime state and died with the crash; re-synthesize
                // it here, or the post-gap batch heads the FIFO pending
                // queue forever (`snapshot_for` can never reach it) and
                // the replayed VTS deadlocks below the gap.
                let s = lb.stream as usize;
                let interval = pl.adaptors[s].schema().batch_interval_ms;
                if replay_high.len() <= s {
                    replay_high.resize(s + 1, 0);
                }
                let last = replay_high[s];
                if lb.timestamp > last + interval {
                    pl.clock_jumps[s].push_back((last, lb.timestamp - interval));
                }
                replay_high[s] = replay_high[s].max(lb.timestamp);
                let batch = Batch::sealed(StreamId(lb.stream), lb.timestamp, lb.tuples, 0);
                report.replayed_batches += 1;
                report.replayed_batch_ids.push(batch.id());
                engine.enqueue_batch(&mut pl, batch);
                // Drain after *every* replayed batch, not once per
                // checkpoint: the log preserves ingestion order, and
                // draining in that order retires the SN-VTS plan's
                // epochs along the exact trajectory of the original run
                // — which is what keeps every batch's (and therefore
                // every window's) snapshot assignment identical across
                // the crash (DESIGN.md §13).
                engine.drain_pending(&mut pl);
            }
        }
        // Adaptors resume strictly after the replayed batches.
        {
            let mut pl = engine.pipeline.lock();
            let stable = pl.coordinator.stable_vts().clone();
            for (i, a) in pl.adaptors.iter_mut().enumerate() {
                a.fast_forward(stable.get(i));
            }
        }
        // Windows resume at the *checkpointed* stable VTS, not the
        // replayed one: the window at the horizon may re-fire
        // (at-least-once, §5), and every window the crash or an outage
        // delayed fires on the next `fire_ready()`.
        let replayed = engine.pipeline.lock().coordinator.stable_vts().clone();
        let mut resume = cp_stable.unwrap_or_else(|| Vts::new(replayed.len()));
        resume.grow(replayed.len());
        for r in engine.registry.read().iter() {
            r.window.lock().catch_up(&resume);
        }

        let counters = engine.cluster.obs().faults();
        report.dedup_suppressed = before.delta(&counters.snapshot()).dedup_suppressed;
        report.restored_stable_sn = engine.stable_sn().0;
        counters.inc_recovery();
        counters.add_replayed_batches(report.replayed_batches);
        let ns = t0.elapsed().as_nanos() as u64;
        report.recovery_ms = ns as f64 / 1e6;
        engine
            .cluster
            .obs()
            .record_stream_stage("recovery", Stage::Recovery, ns);
        drop(recovery_span);
        Ok((engine, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::ntriples;

    fn engine_with_stream() -> (WukongS, StreamId) {
        let engine = WukongS::new(EngineConfig::single_node());
        let ss = engine.strings();
        engine.load_base(ntriples::parse_document(ss, "Logan fo Erik\n").expect("parses"));
        let s = engine.register_stream(StreamSchema::timeless(StreamId(9), "PO", 100));
        // The engine assigns stream IDs itself.
        assert_eq!(s, StreamId(0));
        (engine, s)
    }

    #[test]
    fn register_rejects_wrong_kinds() {
        let (engine, _) = engine_with_stream();
        // One-shot text on the continuous path.
        assert!(matches!(
            engine.register_continuous("SELECT ?X WHERE { Logan fo ?X }"),
            Err(QueryError::Unsupported(_))
        ));
        // Continuous text on the one-shot path.
        assert!(matches!(
            engine.one_shot(
                "REGISTER QUERY q SELECT ?X FROM PO [RANGE 1s STEP 1s] \
                 WHERE { GRAPH PO { ?X po ?Z } }"
            ),
            Err(QueryError::Unsupported(_))
        ));
        // Continuous query over an unregistered stream.
        assert!(matches!(
            engine.register_continuous(
                "REGISTER QUERY q SELECT ?X FROM Nope [RANGE 1s STEP 1s] \
                 WHERE { GRAPH Nope { ?X po ?Z } }"
            ),
            Err(QueryError::Unresolved(_))
        ));
        // A continuous query must read at least one stream.
        assert!(matches!(
            engine.register_continuous(
                "REGISTER QUERY q SELECT ?X FROM PO [RANGE 1s STEP 1s] \
                 WHERE { Logan fo ?X }"
            ),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn dynamic_stream_registration_mid_flight() {
        let (engine, po) = engine_with_stream();
        let ss = engine.strings().clone();
        let t = ntriples::parse_tuple(&ss, "Logan po T-1 50", 1).expect("tuple");
        engine.ingest(po, t.triple, t.timestamp);
        engine.advance_time(500);
        assert_eq!(engine.stable_ts(po), 500);

        // Register a second stream while the first is live (§4.3: "very
        // flexible to handle dynamic streams").
        let li = engine.register_stream(StreamSchema::timeless(StreamId(0), "LI", 100));
        assert_eq!(li, StreamId(1));
        let t = ntriples::parse_tuple(&ss, "Erik li T-1 550", 1).expect("tuple");
        engine.ingest(li, t.triple, t.timestamp);
        engine.advance_time(1_000);
        assert_eq!(engine.stable_ts(po), 1_000);
        assert_eq!(engine.stable_ts(li), 1_000);

        // A query joining both streams works.
        let id = engine
            .register_continuous(
                "REGISTER QUERY q SELECT ?X ?Y ?Z \
                 FROM PO [RANGE 2s STEP 100ms] FROM LI [RANGE 2s STEP 100ms] \
                 WHERE { GRAPH PO { ?X po ?Z } . GRAPH LI { ?Y li ?Z } }",
            )
            .expect("register");
        let (rs, _) = engine.execute_registered(id);
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn fire_ready_catches_up_all_pending_windows() {
        let (engine, po) = engine_with_stream();
        let ss = engine.strings().clone();
        engine
            .register_continuous(
                "REGISTER QUERY q SELECT ?Z FROM PO [RANGE 1s STEP 200ms] \
                 WHERE { GRAPH PO { Logan po ?Z } }",
            )
            .expect("register");
        let t = ntriples::parse_tuple(&ss, "Logan po T-1 100", 1).expect("tuple");
        engine.ingest(po, t.triple, t.timestamp);
        engine.advance_time(1_000);
        // 5 step-200ms windows became ready in one advance.
        let firings = engine.fire_ready();
        assert_eq!(firings.len(), 5);
        assert!(firings.iter().all(|f| f.results.rows.len() == 1));
        // Nothing left to fire until time advances again.
        assert!(engine.fire_ready().is_empty());
    }

    #[test]
    fn construct_feeds_a_derived_stream() {
        // Pipeline: raw posts → CONSTRUCT "influences" edges → a second
        // continuous query consumes the derived stream.
        let (engine, po) = engine_with_stream();
        let ss = engine.strings().clone();
        let derived = engine.register_stream(StreamSchema::timeless(StreamId(0), "Derived", 100));

        engine
            .register_construct(
                "REGISTER QUERY build SELECT ?X                  CONSTRUCT { Erik influences ?X }                  FROM PO [RANGE 1s STEP 100ms]                  WHERE { GRAPH PO { ?X po ?Z } . ?X fo Erik }",
                derived,
            )
            .expect_err("CONSTRUCT replaces SELECT");
        let cid = engine
            .register_construct(
                "REGISTER QUERY build                  CONSTRUCT { Erik influences ?X }                  FROM PO [RANGE 1s STEP 100ms]                  WHERE { GRAPH PO { ?X po ?Z } . ?X fo Erik }",
                derived,
            )
            .expect("construct registers");
        let did = engine
            .register_continuous(
                "REGISTER QUERY consume SELECT ?W                  FROM Derived [RANGE 5s STEP 100ms]                  WHERE { GRAPH Derived { Erik influences ?W } }",
            )
            .expect("consumer registers");

        // Logan follows Erik and posts; the pipeline derives
        // ⟨Erik influences Logan⟩.
        let t = ntriples::parse_tuple(&ss, "Logan po T-1 50", 1).expect("tuple");
        engine.ingest(po, t.triple, t.timestamp);
        engine.advance_time(200);
        let firings = engine.fire_ready();
        assert!(firings
            .iter()
            .any(|f| f.query == cid && !f.results.is_empty()));

        // The derived tuple becomes visible after its batch stabilises.
        engine.advance_time(400);
        let (rs, _) = engine.execute_registered(did);
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(ss.entity_name(rs.rows[0][0]).unwrap(), "Logan");

        // Constructed data is also absorbed into the stored graph.
        let (rs, _) = engine
            .one_shot("SELECT ?W WHERE { Erik influences ?W }")
            .expect("runs");
        assert_eq!(rs.rows.len(), 1);

        // Targeting an unregistered stream fails.
        assert!(engine
            .register_construct(
                "REGISTER QUERY x CONSTRUCT { a b ?X } FROM PO [RANGE 1s STEP 1s]                  WHERE { GRAPH PO { ?X po ?Z } }",
                StreamId(99),
            )
            .is_err());
    }

    #[test]
    fn unregister_stops_firing_and_releases_subscriptions() {
        let (engine, po) = engine_with_stream();
        let ss = engine.strings().clone();
        let q = "REGISTER QUERY q SELECT ?Z FROM PO [RANGE 1s STEP 100ms]                  WHERE { GRAPH PO { Logan po ?Z } }";
        let id = engine.register_continuous(q).expect("register");
        assert_eq!(engine.continuous_count(), 1);
        assert!(!engine.cluster().stream(0).subscribers.read().is_empty());

        let t = ntriples::parse_tuple(&ss, "Logan po T-1 50", 1).expect("tuple");
        engine.ingest(po, t.triple, t.timestamp);
        engine.advance_time(500);
        assert!(!engine.fire_ready().is_empty());

        engine.unregister_continuous(id);
        assert_eq!(engine.continuous_count(), 0);
        assert!(engine.cluster().stream(0).subscribers.read().is_empty());
        engine.advance_time(1_000);
        assert!(engine.fire_ready().is_empty(), "retired queries never fire");
        let (rs, _) = engine.execute_registered(id);
        assert!(rs.is_empty());

        // Checkpoints no longer persist it.
        let cp = crate::checkpoint::Checkpoint::decode(&engine.checkpoint()).expect("decodes");
        assert!(cp.queries.is_empty());

        // Re-registering works and fires again.
        let id2 = engine.register_continuous(q).expect("register");
        let t = ntriples::parse_tuple(&ss, "Logan po T-2 1050", 1).expect("tuple");
        engine.ingest(po, t.triple, t.timestamp);
        engine.advance_time(2_000);
        let firings = engine.fire_ready();
        assert!(firings
            .iter()
            .any(|f| f.query == id2 && !f.results.is_empty()));
    }

    #[test]
    fn windowed_one_shot_reads_current_window() {
        // The time-scoped one-shot of footnote 10: run once over the
        // stream's current window.
        let (engine, po) = engine_with_stream();
        let ss = engine.strings().clone();
        for (name, ts) in [("T-1", 50u64), ("T-2", 950)] {
            let t = ntriples::parse_tuple(&ss, &format!("Logan po {name} {ts}"), 1).expect("tuple");
            engine.ingest(po, t.triple, t.timestamp);
        }
        engine.advance_time(1_000);

        // A 500 ms window at the stable VTS (1000) sees only T-2.
        let (rs, _) = engine
            .one_shot(
                "SELECT ?Z FROM PO [RANGE 500ms STEP 500ms]                  WHERE { GRAPH PO { Logan po ?Z } }",
            )
            .expect("windowed one-shot runs");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(ss.entity_name(rs.rows[0][0]).unwrap(), "T-2");

        // A GRAPH clause naming an unwindowed graph falls back to the
        // stored graph (parser semantics), where both absorbed posts are
        // visible — same as the plain stored-graph one-shot.
        let (rs, _) = engine
            .one_shot("SELECT ?Z WHERE { GRAPH PO { Logan po ?Z } }")
            .expect("runs over the stored graph");
        assert_eq!(rs.rows.len(), 2);
        let (rs, _) = engine
            .one_shot("SELECT ?Z WHERE { Logan po ?Z }")
            .expect("runs");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn stats_reflect_activity() {
        let (engine, po) = engine_with_stream();
        let ss = engine.strings().clone();
        let before = engine.stats();
        assert_eq!(before.streams, 1);
        assert_eq!(before.nodes, 1);
        let t = ntriples::parse_tuple(&ss, "Logan po T-1 50", 1).expect("tuple");
        engine.ingest(po, t.triple, t.timestamp);
        engine.advance_time(500);
        let after = engine.stats();
        assert!(after.stored_triples > before.stored_triples);
        assert!(after.batches_processed >= 5);
        assert!(after.raw_stream_bytes > 0);
        assert!(after.stable_sn > before.stable_sn);
    }

    #[test]
    fn overload_sheds_marks_firings_and_catches_up() {
        let mut cfg = EngineConfig::single_node()
            .with_ingest_budget(Some(wukong_stream::IngestBudget::tuples(8)));
        // Keep the wall-clock latency trip out of this test: only the
        // deterministic queue-overflow path should drive the states.
        cfg.overload.latency_budget_ms = 1e9;
        let engine = WukongS::new(cfg);
        let ss = engine.strings().clone();
        let po = engine.register_stream(StreamSchema::timeless(StreamId(0), "PO", 100));
        engine
            .register_continuous(
                "REGISTER QUERY q SELECT ?X FROM PO [RANGE 1s STEP 200ms] \
                 WHERE { GRAPH PO { ?X po ?Z } }",
            )
            .expect("register");

        // A 20-tuple burst lands in one 100 ms interval — 2.5× budget.
        for i in 0..20u64 {
            let t = ntriples::parse_tuple(&ss, &format!("u{i} po T-{i} {}", 110 + i), 1)
                .expect("tuple");
            engine.ingest(po, t.triple, t.timestamp);
        }
        engine.advance_time(1_000);
        // Liveness: the VTS advanced right through the overload.
        assert_eq!(engine.stable_ts(po), 1_000);
        assert_eq!(engine.overload_state(), OverloadState::Shedding);
        assert_eq!(engine.total_shed(), 20, "drop-oldest empties the burst");
        assert_eq!(engine.shed_outstanding(), 20);

        // Exact staleness: every firing whose window covers the shed
        // batch carries the precise marker.
        let firings = engine.fire_ready();
        assert!(!firings.is_empty());
        let degraded: Vec<_> = firings.iter().filter_map(|f| f.results.degraded).collect();
        assert_eq!(degraded.len(), firings.len());
        assert!(degraded
            .iter()
            .all(|d| d.tuples_shed == 20 && d.windows_affected == 1));

        // Admission control: one-shots are rejected while shedding.
        assert!(matches!(
            engine.one_shot("SELECT ?X WHERE { ?X po T-0 }"),
            Err(QueryError::Overloaded(_))
        ));

        // The quiet period passes → catch-up replays the shed suffix.
        engine.advance_time(2_400);
        assert_eq!(engine.overload_state(), OverloadState::Normal);
        assert_eq!(engine.shed_outstanding(), 0);
        assert_eq!(engine.shed_log().len(), 1, "the log is append-only");
        let (rs, _) = engine
            .one_shot("SELECT ?X WHERE { ?X po T-7 }")
            .expect("admitted again after catch-up");
        assert_eq!(rs.rows.len(), 1, "the replayed tuple is in the store");

        // Post-catch-up firings are whole again: no markers.
        let firings = engine.fire_ready();
        assert!(!firings.is_empty());
        assert!(firings.iter().all(|f| f.results.degraded.is_none()));

        let snap = engine.handle().obs().overload().snapshot();
        assert_eq!(snap.tuples_shed, 20);
        assert_eq!(snap.catchup_replayed_tuples, 20);
        assert_eq!(snap.catchup_replays, 1);
        assert!(snap.admission_rejected >= 1);
        // Normal→Shedding, Shedding→CatchUp, CatchUp→Normal.
        assert_eq!(snap.state_transitions, 3);
    }

    #[test]
    fn unbounded_engine_never_sheds_or_rejects() {
        // No budget ⇒ the whole overload subsystem is inert: this is the
        // byte-identity guarantee for every pre-existing workload.
        let (engine, po) = engine_with_stream();
        let ss = engine.strings().clone();
        for i in 0..200u64 {
            let t = ntriples::parse_tuple(&ss, &format!("u{i} po T-{i} {}", 110 + i), 1)
                .expect("tuple");
            engine.ingest(po, t.triple, t.timestamp);
        }
        engine.advance_time(1_000);
        assert_eq!(engine.overload_state(), OverloadState::Normal);
        assert_eq!(engine.total_shed(), 0);
        assert!(engine.shed_log().is_empty());
        assert!(engine.one_shot("SELECT ?X WHERE { ?X po T-0 }").is_ok());
        let snap = engine.handle().obs().overload().snapshot();
        assert_eq!(snap, Default::default());
    }

    #[test]
    fn quiet_streams_do_not_block_visibility() {
        // Two streams; only one ever produces tuples. Heartbeats must
        // keep the silent stream's VTS advancing so batches of the busy
        // stream become stable (the injector-stall scenario of Fig. 11).
        let engine = WukongS::new(EngineConfig::single_node());
        let ss = engine.strings().clone();
        let po = engine.register_stream(StreamSchema::timeless(StreamId(0), "PO", 100));
        let _li = engine.register_stream(StreamSchema::timeless(StreamId(0), "LI", 100));
        for i in 0..20u64 {
            let t = ntriples::parse_tuple(&ss, &format!("u{i} po T-{i} {}", i * 100 + 50), 1)
                .expect("tuple");
            engine.ingest(po, t.triple, t.timestamp);
        }
        engine.advance_time(2_000);
        assert_eq!(engine.stable_ts(po), 2_000);
        assert!(engine.stable_sn().0 >= 19);
    }

    #[test]
    fn one_shot_plans_come_from_the_cache_under_adaptive() {
        let engine = WukongS::new(EngineConfig::single_node().with_adaptive(true));
        let ss = engine.strings();
        engine.load_base(ntriples::parse_document(ss, "Logan fo Erik\n").expect("parses"));
        let (a, _) = engine.one_shot("SELECT ?X WHERE { Logan fo ?X }").unwrap();
        // Same text, different whitespace: one plan, one cache hit.
        let (b, _) = engine
            .one_shot("SELECT ?X  WHERE  { Logan fo ?X }")
            .unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(engine.plan_cache().misses(), 1);
        assert_eq!(engine.plan_cache().hits(), 1);
        let snap = engine.handle().obs().plan().snapshot();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);

        // A static engine never touches the cache.
        let control = WukongS::new(EngineConfig::single_node());
        let ss = control.strings();
        control.load_base(ntriples::parse_document(ss, "Logan fo Erik\n").expect("parses"));
        let (c, _) = control.one_shot("SELECT ?X WHERE { Logan fo ?X }").unwrap();
        assert_eq!(a.rows, c.rows);
        assert!(control.plan_cache().is_empty());
    }

    #[test]
    fn stats_epoch_advances_with_batch_processing() {
        let (engine, po) = engine_with_stream();
        let ss = engine.strings().clone();
        assert_eq!(engine.stats_epoch(), 0);
        // One sealed batch per 100 ms interval; 32 batches bump once.
        for i in 0..STATS_EPOCH_BATCHES {
            let t = ntriples::parse_tuple(&ss, &format!("u{i} po T-{i} {}", i * 100 + 50), 1)
                .expect("tuple");
            engine.ingest(po, t.triple, t.timestamp);
        }
        engine.advance_time(STATS_EPOCH_BATCHES * 100);
        assert_eq!(engine.stats_epoch(), 1);
    }

    /// Drives the drifted-selectivity scenario: the plan is derived when
    /// the anchor matches one tuple per window, then the anchor's
    /// fan-out explodes. Returns every firing's sorted rows.
    fn drift_workload(cfg: EngineConfig) -> (WukongS, Vec<Vec<Vec<wukong_rdf::Vid>>>) {
        let engine = WukongS::new(cfg);
        let ss = engine.strings().clone();
        let po = engine.register_stream(StreamSchema::timeless(StreamId(0), "PO", 100));
        engine
            .register_continuous(
                "REGISTER QUERY q SELECT ?Z FROM PO [RANGE 300ms STEP 100ms] \
                 WHERE { GRAPH PO { Logan po ?Z } }",
            )
            .expect("register");
        let mut fired = Vec::new();
        for round in 0..8u64 {
            let n = if round == 0 { 1 } else { 40 };
            for k in 0..n {
                let line = format!("Logan po T-{round}-{k} {}", round * 100 + 50);
                let t = ntriples::parse_tuple(&ss, &line, 1).expect("tuple");
                engine.ingest(po, t.triple, t.timestamp);
            }
            engine.advance_time((round + 1) * 100);
            for f in engine.fire_ready() {
                let mut rows = f.results.rows.clone();
                rows.sort();
                fired.push(rows);
            }
        }
        (engine, fired)
    }

    #[test]
    fn drift_trips_a_replan_without_changing_any_firing() {
        let (adaptive, fired_a) = drift_workload(EngineConfig::single_node().with_adaptive(true));
        let (static_, fired_s) = drift_workload(EngineConfig::single_node());
        // Identical firing sequence — re-planning is result-transparent.
        assert_eq!(fired_a, fired_s);
        assert!(!fired_a.is_empty());

        let snap = adaptive.handle().obs().plan().snapshot();
        // The 40×-per-window regime vs the estimate frozen at one tuple
        // drifts every firing after the first; three consecutive trips.
        assert!(snap.feedback_firings > 0, "feedback observed: {snap:?}");
        assert!(snap.drifted_firings >= 3, "drift detected: {snap:?}");
        assert!(snap.replans >= 1, "detector tripped: {snap:?}");
        // The static engine's adaptive counters stay silent (only the
        // unconditional modeled-work metric accumulates).
        let control = static_.handle().obs().plan().snapshot();
        assert_eq!(control.replans, 0);
        assert_eq!(control.feedback_firings, 0);
        assert_eq!(control.cache_hits + control.cache_misses, 0);
        assert!(control.edges_traversed > 0);
    }

    #[test]
    fn force_replan_is_transparent_and_rebuilds_delta_state() {
        // Maintained query (incremental on): force a mid-stream plan
        // switch and compare every subsequent firing against a control
        // engine that never re-plans.
        let run = |replan_at: Option<u64>| {
            let engine = WukongS::new(EngineConfig::single_node().with_incremental(true));
            let ss = engine.strings().clone();
            let po = engine.register_stream(StreamSchema::timeless(StreamId(0), "PO", 100));
            let id = engine
                .register_continuous(
                    "REGISTER QUERY q SELECT ?Z FROM PO [RANGE 300ms STEP 100ms] \
                     WHERE { GRAPH PO { Logan po ?Z } }",
                )
                .expect("register");
            let mut fired = Vec::new();
            for round in 0..6u64 {
                for k in 0..3u64 {
                    let line = format!("Logan po T-{round}-{k} {}", round * 100 + 50);
                    let t = ntriples::parse_tuple(&ss, &line, 1).expect("tuple");
                    engine.ingest(po, t.triple, t.timestamp);
                }
                engine.advance_time((round + 1) * 100);
                if replan_at == Some(round) {
                    engine.force_replan(id);
                }
                for f in engine.fire_ready() {
                    let mut rows = f.results.rows.clone();
                    rows.sort();
                    fired.push((f.window_end, rows));
                }
            }
            (engine, fired)
        };
        let (engine, with_switch) = run(Some(3));
        let (_, control) = run(None);
        assert_eq!(with_switch, control);
        let snap = engine.handle().obs().plan().snapshot();
        assert_eq!(snap.replans, 1);
        assert_eq!(snap.delta_rebuilds, 1, "retained state dropped: {snap:?}");
    }
}
