//! The invariant scrubber (DESIGN.md §13).
//!
//! Checksums catch corruption of data *in flight*; the scrubber catches
//! corruption of derived engine state by re-checking, between firings,
//! invariants the design argues hold by construction:
//!
//! * **VTS monotonicity** — no local VTS entry regresses between scrub
//!   passes, and the stable VTS never runs ahead of the element-wise
//!   minimum of the live nodes' local VTS (the SN-VTS definition, §4.3).
//! * **Conservation ledger** — every tuple that entered the pipeline is
//!   installed, still pending, or accounted shed by the PR 5 shedder:
//!   `ingested = installed + pending + shed`.
//! * **Death-timestamp bound** — every row a maintained query's
//!   `DeltaState` retains must die strictly after the last fired window
//!   (the PR 4 retraction invariant `death > hi`).
//!
//! A clean engine reports no violations under any fault schedule — the
//! chaos gate — so any hit is a real state-integrity bug, not noise.

use wukong_rdf::Timestamp;

/// One violated invariant found by [`crate::WukongS::scrub`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubViolation {
    /// A node's local VTS entry moved backwards between scrub passes.
    VtsRegression {
        /// The regressing node.
        node: u16,
        /// The stream whose entry regressed.
        stream: u16,
        /// The entry at the previous scrub.
        was: Timestamp,
        /// The entry now.
        now: Timestamp,
    },
    /// The stable VTS ran ahead of the minimum live local VTS entry.
    StableAhead {
        /// The affected stream.
        stream: u16,
        /// The stable VTS entry.
        stable: Timestamp,
        /// The minimum over live nodes' local entries.
        min_local: Timestamp,
    },
    /// The conservation ledger does not balance.
    ConservationMismatch {
        /// Tuples that entered the pipeline.
        ingested: u64,
        /// Tuples handed to per-node install.
        installed: u64,
        /// Tuples still waiting in pending queues.
        pending: u64,
        /// Tuples accounted for by the shedder.
        shed: u64,
    },
    /// A maintained query retains a row that should have been retracted.
    DeathBound {
        /// The offending query's registered name.
        query: String,
        /// The row's death timestamp.
        death: Timestamp,
        /// The latest fired window end it should have outlived.
        hi: Timestamp,
    },
}

impl std::fmt::Display for ScrubViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrubViolation::VtsRegression {
                node,
                stream,
                was,
                now,
            } => write!(
                f,
                "local VTS regressed on node {node} stream {stream}: {was} -> {now}"
            ),
            ScrubViolation::StableAhead {
                stream,
                stable,
                min_local,
            } => write!(
                f,
                "stable VTS {stable} ahead of min local {min_local} on stream {stream}"
            ),
            ScrubViolation::ConservationMismatch {
                ingested,
                installed,
                pending,
                shed,
            } => write!(
                f,
                "ledger: ingested {ingested} != installed {installed} + pending {pending} + shed {shed}"
            ),
            ScrubViolation::DeathBound { query, death, hi } => write!(
                f,
                "query {query} retains row dying at {death} <= fired hi {hi}"
            ),
        }
    }
}
