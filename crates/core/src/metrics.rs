//! Latency statistics for the evaluation harness.

/// Collects latency samples and reports the percentiles the paper uses
/// (median, 90th, 99th) plus geometric means for table footers.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ms: Vec<f64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample in milliseconds.
    pub fn record(&mut self, ms: f64) {
        self.samples_ms.push(ms);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// The `p`-th percentile (0.0–100.0), by nearest-rank.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.samples_ms.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median latency (50th percentile — the paper's headline metric).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        (!self.samples_ms.is_empty())
            .then(|| self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64)
    }

    /// All samples, for CDF plotting (Figs. 14b/15b).
    pub fn samples(&self) -> &[f64] {
        &self.samples_ms
    }

    /// CDF points `(latency_ms, fraction ≤)` at the given resolution.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.samples_ms.is_empty() || points == 0 {
            return Vec::new();
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * sorted.len() as f64).ceil() as usize).max(1) - 1;
                (sorted[idx.min(sorted.len() - 1)], frac)
            })
            .collect()
    }
}

/// Geometric mean of a set of per-query medians (table footers).
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_by_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record(i as f64);
        }
        assert_eq!(r.median(), Some(50.0));
        assert_eq!(r.percentile(99.0), Some(99.0));
        assert_eq!(r.percentile(100.0), Some(100.0));
        assert_eq!(r.percentile(1.0), Some(1.0));
    }

    #[test]
    fn empty_recorder_returns_none() {
        let r = LatencyRecorder::new();
        assert_eq!(r.median(), None);
        assert_eq!(r.mean(), None);
        assert!(r.cdf(10).is_empty());
    }

    #[test]
    fn cdf_is_monotonic() {
        let mut r = LatencyRecorder::new();
        for i in [5.0, 1.0, 3.0, 2.0, 4.0] {
            r.record(i);
        }
        let cdf = r.cdf(5);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last(), Some(&(5.0, 1.0)));
    }

    #[test]
    fn geometric_mean_matches_paper_usage() {
        // Table 2 footer style: geo-mean over per-query medians.
        let g = geometric_mean([1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert_eq!(geometric_mean([]), None);
        assert_eq!(geometric_mean([0.0]), None);
    }
}
