//! The client library and proxies (§3, Fig. 5).
//!
//! "Each client contains a client library that can parse continuous and
//! one-shot queries into a set of stored procedures, which will be
//! immediately executed for one-shot queries or registered for continuous
//! queries … Alternatively, Wukong+S can use a set of dedicated proxies to
//! run the client-side library and balance client requests."
//!
//! [`Client`] parses queries once into [`Prepared`] stored procedures
//! (strings already converted to IDs through the string server, so no
//! long strings cross the wire, §3) and submits them through a
//! round-robin [`ProxyPool`].

use crate::engine::{ContinuousId, WukongS};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wukong_query::{parse_query, Query, QueryError, QueryKind, ResultSet};

/// A parsed, ID-resolved query — the client library's stored procedure.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub(crate) query: Query,
    /// The original text (re-registration after failover, checkpoints).
    pub text: String,
}

impl Prepared {
    /// Whether this procedure registers a continuous query.
    pub fn is_continuous(&self) -> bool {
        self.query.kind == QueryKind::Continuous
    }

    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }
}

/// A set of proxies balancing client requests across the deployment.
///
/// In this in-process reproduction every proxy fronts the same engine;
/// the pool's job is the paper-visible behaviour — spreading request
/// handling and giving clients one handle to prepare/submit through.
pub struct ProxyPool {
    engine: Arc<WukongS>,
    proxies: usize,
    next: AtomicUsize,
    /// Per-proxy counters of requests handled (load-balance visibility).
    handled: Vec<Mutex<u64>>,
}

impl ProxyPool {
    /// Creates a pool of `proxies` proxies over `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `proxies` is zero.
    pub fn new(engine: Arc<WukongS>, proxies: usize) -> Self {
        assert!(proxies > 0, "a proxy pool needs at least one proxy");
        ProxyPool {
            engine,
            proxies,
            next: AtomicUsize::new(0),
            handled: (0..proxies).map(|_| Mutex::new(0)).collect(),
        }
    }

    fn pick(&self) -> usize {
        let p = self.next.fetch_add(1, Ordering::Relaxed) % self.proxies;
        *self.handled[p].lock() += 1;
        p
    }

    /// Requests handled by each proxy so far.
    pub fn load(&self) -> Vec<u64> {
        self.handled.iter().map(|h| *h.lock()).collect()
    }

    /// The engine behind the pool.
    pub fn engine(&self) -> &Arc<WukongS> {
        &self.engine
    }
}

/// A client of a Wukong+S deployment.
pub struct Client {
    pool: Arc<ProxyPool>,
}

impl Client {
    /// Connects a client through `pool`.
    pub fn connect(pool: Arc<ProxyPool>) -> Self {
        Client { pool }
    }

    /// Parses `text` into a stored procedure (client-side: strings are
    /// interned into IDs here, before anything reaches a server).
    pub fn prepare(&self, text: &str) -> Result<Prepared, QueryError> {
        let query = parse_query(self.pool.engine.strings(), text)?;
        Ok(Prepared {
            query,
            text: text.to_owned(),
        })
    }

    /// Submits a stored procedure: continuous queries register, one-shot
    /// queries execute immediately.
    pub fn submit(&self, p: &Prepared) -> Result<Submitted, QueryError> {
        let _proxy = self.pool.pick();
        if p.is_continuous() {
            Ok(Submitted::Registered(
                self.pool.engine.register_continuous(&p.text)?,
            ))
        } else {
            let (results, latency_ms) = self.pool.engine.one_shot(&p.text)?;
            Ok(Submitted::Results {
                results,
                latency_ms,
            })
        }
    }

    /// Convenience: parse and submit in one step.
    pub fn query(&self, text: &str) -> Result<Submitted, QueryError> {
        let p = self.prepare(text)?;
        self.submit(&p)
    }

    /// Executes a registered continuous query against its current windows
    /// (the throughput-test path).
    pub fn execute(&self, id: ContinuousId) -> (ResultSet, f64) {
        let _proxy = self.pool.pick();
        self.pool.engine.execute_registered(id)
    }
}

/// Outcome of a submission.
#[derive(Debug)]
pub enum Submitted {
    /// A continuous query was registered.
    Registered(ContinuousId),
    /// A one-shot query ran.
    Results {
        /// The projected result set.
        results: ResultSet,
        /// Total latency, ms.
        latency_ms: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use wukong_rdf::{ntriples, StreamId};
    use wukong_stream::StreamSchema;

    fn pool() -> Arc<ProxyPool> {
        let engine = Arc::new(WukongS::new(EngineConfig::single_node()));
        let ss = engine.strings();
        engine.load_base(
            ntriples::parse_document(ss, "Logan fo Erik\nLogan po T-13\n").expect("parses"),
        );
        engine.register_stream(StreamSchema::timeless(StreamId(0), "PO", 100));
        Arc::new(ProxyPool::new(engine, 3))
    }

    #[test]
    fn oneshot_roundtrip_through_client() {
        let client = Client::connect(pool());
        match client
            .query("SELECT ?X WHERE { Logan po ?X }")
            .expect("runs")
        {
            Submitted::Results { results, .. } => assert_eq!(results.rows.len(), 1),
            other => panic!("expected results, got {other:?}"),
        }
    }

    #[test]
    fn continuous_registration_through_client() {
        let pool = pool();
        let client = Client::connect(Arc::clone(&pool));
        let p = client
            .prepare(
                "REGISTER QUERY q SELECT ?Z FROM PO [RANGE 1s STEP 100ms] \
                 WHERE { GRAPH PO { Logan po ?Z } }",
            )
            .expect("parses");
        assert!(p.is_continuous());
        let id = match client.submit(&p).expect("registers") {
            Submitted::Registered(id) => id,
            other => panic!("expected registration, got {other:?}"),
        };
        assert_eq!(pool.engine().continuous_count(), 1);
        let (rs, _) = client.execute(id);
        assert!(rs.is_empty(), "no stream data yet");
    }

    #[test]
    fn proxies_balance_requests() {
        let pool = pool();
        let client = Client::connect(Arc::clone(&pool));
        for _ in 0..9 {
            let _ = client.query("SELECT ?X WHERE { Logan po ?X }");
        }
        let load = pool.load();
        assert_eq!(load.len(), 3);
        assert!(load.iter().all(|&l| l == 3), "uneven load: {load:?}");
    }

    #[test]
    fn prepare_rejects_bad_queries() {
        let client = Client::connect(pool());
        assert!(client.prepare("SELECT WHERE {}").is_err());
        assert!(client.prepare("nonsense").is_err());
    }
}
