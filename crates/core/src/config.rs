//! Engine configuration.

use wukong_net::{FaultPlan, NetworkProfile};
use wukong_query::DriftPolicy;
use wukong_stream::{IngestBudget, ShedPolicy, StalenessBound};

/// How queries execute across the cluster (§5, "Leveraging RDMA").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Per-query heuristic: in-place for selective queries, fork-join for
    /// queries that start from an index scan over the stored graph.
    Auto,
    /// Always single-worker in-place execution with one-sided reads.
    InPlace,
    /// Always distributed fork-join execution (the paper's Non-RDMA mode
    /// enforces this, §6.2 Table 5).
    ForkJoin,
}

/// Per-RPC failure-handling policy for fork-join execution under an
/// installed fault plan: how long a worker waits for each remote reply,
/// what a timed-out attempt costs in virtual time, and how retries back
/// off. See DESIGN.md §8 for the rationale behind the defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcPolicy {
    /// Real-time wait per RPC attempt before declaring a timeout.
    pub deadline_ms: u64,
    /// Virtual nanoseconds charged for each timed-out attempt (the
    /// modelled deadline; the real wait itself is excluded from latency).
    pub deadline_charge_ns: u64,
    /// Retries after the first timed-out attempt before the shard is
    /// declared unreachable and the query degrades to partial results.
    pub max_retries: u32,
    /// First retry's backoff charge, doubled per retry.
    pub backoff_base_ns: u64,
    /// Cap on the per-retry backoff charge.
    pub backoff_cap_ns: u64,
}

impl Default for RpcPolicy {
    fn default() -> Self {
        RpcPolicy {
            deadline_ms: 2,
            deadline_charge_ns: 500_000,
            max_retries: 3,
            backoff_base_ns: 100_000,
            backoff_cap_ns: 1_600_000,
        }
    }
}

impl RpcPolicy {
    /// The capped exponential backoff charged before retry `attempt`
    /// (1-based).
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shifted = self
            .backoff_base_ns
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32));
        shifted.min(self.backoff_cap_ns)
    }
}

/// Static configuration of a Wukong+S deployment.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of (simulated) cluster nodes.
    pub nodes: usize,
    /// Key-space partitions per shard (≥ 1).
    pub partitions_per_shard: usize,
    /// Network cost model.
    pub network: NetworkProfile,
    /// Execution-mode policy.
    pub exec_mode: ExecMode,
    /// SN-VTS plan staleness bound (batches per snapshot).
    pub staleness: StalenessBound,
    /// Transient-store ring budget per (node, stream), bytes.
    pub transient_budget_bytes: usize,
    /// Sweep transient slices / stream-index batches every this many
    /// batches per stream (the periodic background GC).
    pub gc_every_batches: u64,
    /// Extra history kept beyond the widest registered window, ms.
    pub gc_slack_ms: u64,
    /// Enable checkpoint logging (fault tolerance, §5). Adds the paper's
    /// ~0.3 ms per-batch logging delay to injection.
    pub fault_tolerance: bool,
    /// Replicate stream indexes to subscriber nodes (locality-aware
    /// partitioning, §4.2). Off reproduces the "partitioned stream index"
    /// strawman that pays an extra RDMA read per remote window lookup.
    pub replicate_stream_indexes: bool,
    /// Worker cores serving one continuous query on each node. The paper
    /// restricts this to 1 by default (queries are light-weight and run
    /// concurrently) and shows that 4 cores speed the group II queries up
    /// ~3× when low latency is critical (§6.4).
    pub cores_per_query: usize,
    /// Deterministic fault plan installed on the fabric at boot (`None`
    /// runs the cluster fault-free, exactly as before).
    pub fault_plan: Option<FaultPlan>,
    /// Per-RPC deadline/retry/backoff policy for fork-join under faults.
    pub rpc: RpcPolicy,
    /// Worker threads per node: the lanes of each node's `WorkerPool`,
    /// shared by continuous-query firings, fork-join partitions, one-shot
    /// batches, and per-node ingest application. Results are
    /// deterministic-by-construction for any value (DESIGN.md §9).
    /// Presets read `WUKONG_WORKERS` (default 1).
    pub worker_threads: usize,
    /// Delta-maintenance execution for continuous queries: keep each
    /// registered query's window state materialized and process only the
    /// inserted suffix / expired prefix of an overlapping window instead
    /// of re-running the full scan/join (DESIGN.md §10). Queries whose
    /// plans are not incrementalizable — and every firing while a fault
    /// plan is installed — automatically fall back to full recompute.
    /// Presets read `WUKONG_INCREMENTAL` (default off). Results are
    /// byte-identical either way; this is purely a latency knob.
    pub incremental: bool,
    /// Bounded-ingest budget per stream: the maximum backlog of pending
    /// (enqueued but not yet applied) tuples/bytes the engine will hold
    /// before shedding load deterministically (DESIGN.md §11). `None`
    /// (the default) keeps the pre-overload unbounded behaviour — no
    /// shedding, no admission control, no degraded markers — so every
    /// existing workload is byte-identical. Presets read
    /// `WUKONG_INGEST_BUDGET` (a tuple count; unset/0 = unbounded).
    pub ingest_budget: Option<IngestBudget>,
    /// Which tuples go when the ingest budget overflows. Only consulted
    /// when [`EngineConfig::ingest_budget`] is set.
    pub shed_policy: ShedPolicy,
    /// Seed for the deterministic sample-within-batch shed mask. Shed
    /// decisions are a pure function of (seed, stream, batch timestamp),
    /// so the same seed reproduces the same shed log bit-for-bit.
    pub shed_seed: u64,
    /// Deadline/degradation policy for the overload state machine. Only
    /// consulted when [`EngineConfig::ingest_budget`] is set.
    pub overload: OverloadPolicy,
    /// Adaptive planning (DESIGN.md §12): cache plans keyed on
    /// `(normalized query text, stats epoch)`, feed per-step fan-out
    /// back into a drift detector that re-plans continuous queries whose
    /// estimates rot, and let the network cost model pick in-place vs
    /// fork-join per firing under `ExecMode::Auto`. Presets read
    /// `WUKONG_ADAPTIVE` (default off). Results are byte-identical
    /// either way; this is purely a plan-quality/latency knob.
    pub adaptive: bool,
    /// When the adaptive drift detector re-plans. Only consulted when
    /// [`EngineConfig::adaptive`] is on.
    pub drift: DriftPolicy,
    /// The always-on flight recorder (DESIGN.md §14): causal IDs, compact
    /// span events in per-thread rings, and anomaly-triggered black-box
    /// dumps. On by default; `WUKONG_TRACE=0` turns it off. Results are
    /// byte-identical either way — the recorder observes, never steers —
    /// and `exp_trace` gates its modeled-latency overhead below 10%.
    pub trace: bool,
}

/// Deadline-aware degradation policy (DESIGN.md §11): when continuous
/// firings sustainedly miss the latency budget the engine trips from
/// `Normal` into `Shedding` (one-shot queries are rejected first — they
/// have no freshness contract), and once the overload subsides it replays
/// the shed suffix (`CatchUp`) and converges back to `Normal`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Per-firing latency budget in virtual milliseconds. Firings are
    /// "misses" when their simulated latency exceeds this.
    pub latency_budget_ms: f64,
    /// Consecutive firing misses before the state machine trips from
    /// `Normal` to `Shedding` even without a queue overflow.
    pub trip_after_misses: u32,
    /// Quiet period: once stream time passes the last shed timestamp by
    /// this many milliseconds, the engine enters `CatchUp`, replays the
    /// retained shed suffix, and returns to `Normal`.
    pub catchup_quiet_ms: u64,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy {
            latency_budget_ms: 1.0,
            trip_after_misses: 3,
            catchup_quiet_ms: 2_000,
        }
    }
}

impl EngineConfig {
    /// A single-node RDMA deployment with small defaults (tests/examples).
    pub fn single_node() -> Self {
        EngineConfig {
            nodes: 1,
            partitions_per_shard: 8,
            network: NetworkProfile::rdma(),
            exec_mode: ExecMode::Auto,
            staleness: StalenessBound(1),
            transient_budget_bytes: 64 << 20,
            gc_every_batches: 16,
            gc_slack_ms: 1_000,
            fault_tolerance: false,
            replicate_stream_indexes: true,
            cores_per_query: 1,
            fault_plan: None,
            rpc: RpcPolicy::default(),
            worker_threads: Self::worker_threads_from_env(),
            incremental: Self::incremental_from_env(),
            ingest_budget: Self::ingest_budget_from_env(),
            shed_policy: ShedPolicy::default(),
            shed_seed: 42,
            overload: OverloadPolicy::default(),
            adaptive: Self::adaptive_from_env(),
            drift: DriftPolicy::default(),
            trace: Self::trace_from_env(),
        }
    }

    /// The `WUKONG_TRACE` environment override for
    /// [`EngineConfig::trace`] (on unless set to `0` or `false` — the
    /// flight recorder is always-on by design). CI runs the quick suite
    /// at both settings to prove tracing never changes results.
    pub fn trace_from_env() -> bool {
        std::env::var("WUKONG_TRACE")
            .map(|s| {
                let s = s.trim();
                !(s == "0" || s.eq_ignore_ascii_case("false"))
            })
            .unwrap_or(true)
    }

    /// Returns this configuration with `trace` set to `on`.
    pub fn with_trace(self, on: bool) -> Self {
        EngineConfig { trace: on, ..self }
    }

    /// The `WUKONG_ADAPTIVE` environment override for
    /// [`EngineConfig::adaptive`] (off unless set to `1` or `true`).
    /// CI runs the whole test suite at both settings to prove adaptive
    /// and static planning are equivalent.
    pub fn adaptive_from_env() -> bool {
        std::env::var("WUKONG_ADAPTIVE")
            .map(|s| {
                let s = s.trim();
                s == "1" || s.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false)
    }

    /// Returns this configuration with `adaptive` set to `on`.
    pub fn with_adaptive(self, on: bool) -> Self {
        EngineConfig {
            adaptive: on,
            ..self
        }
    }

    /// Returns this configuration with the drift policy set.
    pub fn with_drift(self, drift: DriftPolicy) -> Self {
        EngineConfig { drift, ..self }
    }

    /// The `WUKONG_INGEST_BUDGET` environment override for
    /// [`EngineConfig::ingest_budget`]: a per-stream pending-tuple cap.
    /// Unset, unparsable, or `0` means unbounded (the pre-overload
    /// behaviour). CI's matrix runs the suite with a budget installed to
    /// prove bounded ingest never changes results while no shed fires.
    pub fn ingest_budget_from_env() -> Option<IngestBudget> {
        std::env::var("WUKONG_INGEST_BUDGET")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .map(IngestBudget::tuples)
    }

    /// Returns this configuration with the ingest budget set (`None`
    /// restores unbounded ingest).
    pub fn with_ingest_budget(self, budget: Option<IngestBudget>) -> Self {
        EngineConfig {
            ingest_budget: budget,
            ..self
        }
    }

    /// Returns this configuration with the shed policy set.
    pub fn with_shed_policy(self, policy: ShedPolicy) -> Self {
        EngineConfig {
            shed_policy: policy,
            ..self
        }
    }

    /// The `WUKONG_INCREMENTAL` environment override for
    /// [`EngineConfig::incremental`] (off unless set to `1` or `true`).
    /// CI runs the whole test suite at both settings to prove the two
    /// execution modes are equivalent.
    pub fn incremental_from_env() -> bool {
        std::env::var("WUKONG_INCREMENTAL")
            .map(|s| {
                let s = s.trim();
                s == "1" || s.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false)
    }

    /// Returns this configuration with `incremental` set to `on`.
    pub fn with_incremental(self, on: bool) -> Self {
        EngineConfig {
            incremental: on,
            ..self
        }
    }

    /// The `WUKONG_WORKERS` environment override for
    /// [`EngineConfig::worker_threads`] (default 1, the paper's baseline
    /// single worker per query). CI runs the whole test suite at 1 and 4
    /// to prove thread-count equivalence.
    pub fn worker_threads_from_env() -> usize {
        std::env::var("WUKONG_WORKERS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }

    /// Returns this configuration with `worker_threads` set to `n`.
    pub fn with_workers(self, n: usize) -> Self {
        EngineConfig {
            worker_threads: n.max(1),
            ..self
        }
    }

    /// An `n`-node RDMA cluster (the paper's default fabric).
    pub fn cluster(n: usize) -> Self {
        EngineConfig {
            nodes: n,
            ..Self::single_node()
        }
    }

    /// The paper's Non-RDMA configuration: TCP costs + forced fork-join.
    pub fn cluster_tcp(n: usize) -> Self {
        EngineConfig {
            nodes: n,
            network: NetworkProfile::tcp(),
            exec_mode: ExecMode::ForkJoin,
            ..Self::single_node()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let c = EngineConfig::cluster(8);
        assert_eq!(c.nodes, 8);
        assert!(c.network.one_sided_available);
        let t = EngineConfig::cluster_tcp(4);
        assert!(!t.network.one_sided_available);
        assert_eq!(t.exec_mode, ExecMode::ForkJoin);
        assert!(t.fault_plan.is_none());
    }

    #[test]
    fn worker_threads_knob() {
        // Presets default from the environment (1 unless WUKONG_WORKERS
        // is set, in which case CI's matrix leg is in charge).
        let c = EngineConfig::single_node();
        assert!(c.worker_threads >= 1);
        let c = EngineConfig::cluster(3).with_workers(4);
        assert_eq!(c.worker_threads, 4);
        assert_eq!(
            EngineConfig::single_node().with_workers(0).worker_threads,
            1
        );
    }

    #[test]
    fn incremental_knob() {
        // Presets default from the environment (off unless
        // WUKONG_INCREMENTAL is set, in which case CI's matrix leg is in
        // charge); the builder pins it either way.
        let on = EngineConfig::single_node().with_incremental(true);
        assert!(on.incremental);
        assert!(!on.with_incremental(false).incremental);
        assert_eq!(
            EngineConfig::cluster(3).incremental,
            EngineConfig::single_node().incremental
        );
    }

    #[test]
    fn overload_knobs() {
        // Budget defaults from the environment (unbounded unless
        // WUKONG_INGEST_BUDGET is set, in which case CI's matrix leg is
        // in charge); builders pin it either way.
        let c = EngineConfig::single_node().with_ingest_budget(Some(IngestBudget::tuples(128)));
        assert_eq!(c.ingest_budget.unwrap().max_tuples, 128);
        assert!(c.with_ingest_budget(None).ingest_budget.is_none());
        let c = EngineConfig::single_node().with_shed_policy(ShedPolicy::SampleWithinBatch);
        assert_eq!(c.shed_policy, ShedPolicy::SampleWithinBatch);
        let p = OverloadPolicy::default();
        assert!(p.latency_budget_ms > 0.0);
        assert!(p.trip_after_misses >= 1);
        assert!(p.catchup_quiet_ms > 0);
    }

    #[test]
    fn adaptive_knob() {
        // Presets default from the environment (off unless
        // WUKONG_ADAPTIVE is set, in which case CI's matrix leg is in
        // charge); the builder pins it either way.
        let on = EngineConfig::single_node().with_adaptive(true);
        assert!(on.adaptive);
        assert!(!on.with_adaptive(false).adaptive);
        let d = EngineConfig::single_node().drift;
        assert!(d.band > 1.0);
        assert!(d.trip_after >= 1);
        let c = EngineConfig::single_node().with_drift(DriftPolicy {
            band: 2.0,
            trip_after: 1,
        });
        assert_eq!(c.drift.band, 2.0);
        assert_eq!(c.drift.trip_after, 1);
    }

    #[test]
    fn trace_knob() {
        // Presets default from the environment (ON unless WUKONG_TRACE
        // is 0/false — the recorder is always-on); the builder pins it.
        let c = EngineConfig::single_node();
        assert!(!c.with_trace(false).trace);
        assert!(EngineConfig::single_node().with_trace(true).trace);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RpcPolicy::default();
        assert_eq!(p.backoff_ns(1), 100_000);
        assert_eq!(p.backoff_ns(2), 200_000);
        assert_eq!(p.backoff_ns(3), 400_000);
        assert_eq!(p.backoff_ns(30), p.backoff_cap_ns);
    }
}
