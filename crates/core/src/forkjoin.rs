//! Fork-join distributed execution (§5, §6.2).
//!
//! Non-selective queries spread their work: at every exploration step the
//! binding table partitions by the owner node of each row's anchor
//! vertex, the partitions execute in parallel on their owning nodes (no
//! remote reads inside a partition), and results join back at the home
//! node. Each hop with a non-empty remote partition charges a fork
//! message carrying the rows and a join message carrying the results —
//! this synchronisation is why fork-join trails in-place execution for
//! selective queries (Table 5) yet wins for queries that scan large
//! portions of the stored graph (Fig. 12's group II speedup).

use crate::access::NodeAccess;
use crate::cluster::Cluster;
use crate::config::RpcPolicy;
use std::time::Duration;
use wukong_net::{Endpoint, NodeId, TaskTimer};
use wukong_obs::{Stage, StageTrace};
use wukong_query::ast::Term;
use wukong_query::bindings::{BindingTable, UNBOUND};
use wukong_query::exec::{ExecContext, GraphAccess, LiteralResolver};
use wukong_query::plan::{Plan, Step, StepMode};
use wukong_query::{apply_ready_filters, execute_step, finalize, Query, ResultSet};
use wukong_rdf::{Dir, Key, Vid};

fn anchor_vid(step: &Step, row: &[Vid]) -> Option<Vid> {
    let term = match step.mode {
        StepMode::FromSubject => step.pattern.s,
        StepMode::FromObject => step.pattern.o,
        StepMode::IndexScan => return None,
    };
    match term {
        Term::Const(c) => Some(c),
        Term::Var(v) => {
            let val = row[v as usize];
            (val != UNBOUND).then_some(val)
        }
    }
}

fn anchor_key(step: &Step, v: Vid) -> Key {
    match step.mode {
        StepMode::FromSubject => Key::new(v, step.pattern.p, Dir::Out),
        StepMode::FromObject => Key::new(v, step.pattern.p, Dir::In),
        StepMode::IndexScan => unreachable!("index scans are rewritten before partitioning"),
    }
}

/// What failed during one fork-join execution (graceful degradation).
#[derive(Debug, Default, Clone)]
pub struct FaultTally {
    /// Nodes whose partitions never answered within the RPC retry
    /// budget; their rows are missing from the result.
    pub unreachable: Vec<u16>,
}

/// Runs one remote partition as an RPC with per-attempt deadlines and
/// capped exponential backoff (fault-injection mode only). The request
/// and reply travel through real fabric endpoints, so the installed
/// fault plan can drop, duplicate, or delay either side; a timed-out
/// attempt charges the modelled deadline instead of its real wait.
///
/// Returns the partition's result (or `None` once the retry budget is
/// exhausted — the shard is unreachable) and the hop cost either way: a
/// failed partition still spent its deadlines inside the parallel fork,
/// so its cost participates in the step's max-hop like any other.
#[allow(clippy::too_many_arguments)]
fn rpc_partition(
    step: &Step,
    part: &BindingTable,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    node: NodeId,
    cores: usize,
    policy: &RpcPolicy,
    eps: &[Endpoint<u64>],
    timer: &mut TaskTimer,
    sequential_real: &mut u64,
) -> (Option<BindingTable>, u64) {
    let fabric = cluster.fabric();
    let counters = cluster.obs().faults();
    let home_ep = &eps[home.idx()];
    let worker_ep = &eps[node.idx()];
    // Stale replies from an earlier partition's duplicated deliveries
    // must not satisfy this partition's wait.
    while home_ep.try_recv().is_some() {}

    let mut net_ns = 0u64;
    let mut result: Option<BindingTable> = None;
    let max_attempts = 1 + policy.max_retries;
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            counters.inc_rpc_retry();
            net_ns += policy.backoff_ns(attempt - 1);
        }
        if !fabric.is_up(node) {
            // A dead worker can never answer: charge the modelled
            // deadline without burning real wall-clock on the wait.
            counters.inc_rpc_timeout();
            net_ns += policy.deadline_charge_ns;
            continue;
        }
        net_ns += home_ep.send(node, part.wire_bytes(), attempt as u64);
        // The worker drains its mailbox and answers every delivered
        // request copy; re-execution is idempotent, so duplicated
        // requests only cost (excluded) compute and an extra reply.
        while let Some(_req) = worker_ep.try_recv() {
            let access = NodeAccess::new(cluster, node);
            let started = std::time::Instant::now();
            let mut sub_timer = TaskTimer::start();
            let out = execute_step(step, part, ctx, &access, &mut sub_timer);
            let real = started.elapsed().as_nanos() as u64;
            *sequential_real += real;
            let c = cores.max(1).min(part.len().max(1)) as u64;
            let work_ns = (real + sub_timer.charged_ns()) / c;
            worker_ep.send(home, out.wire_bytes(), work_ns);
            result = Some(out);
        }
        let wait = std::time::Instant::now();
        match home_ep.recv_timeout(Duration::from_millis(policy.deadline_ms)) {
            Ok(env) => {
                timer.exclude(wait.elapsed().as_nanos() as u64);
                net_ns += env.charged_ns + env.payload;
                while home_ep.try_recv().is_some() {}
                let out = result.expect("a delivered reply implies an executed partition");
                return (Some(out), net_ns);
            }
            Err(_) => {
                // Request or reply lost: the real wait is bookkeeping
                // (the simulation delivers instantly or never), the
                // modelled deadline is the charged cost.
                timer.exclude(wait.elapsed().as_nanos() as u64);
                counters.inc_rpc_timeout();
                net_ns += policy.deadline_charge_ns;
            }
        }
    }
    (None, net_ns)
}

/// Executes one anchored step with per-node partitioning and parallel
/// workers; returns the joined table. Under an installed fault plan,
/// remote partitions run as deadline-bounded RPCs (see
/// [`rpc_partition`]); unreachable shards land in `tally` and their rows
/// are omitted.
#[allow(clippy::too_many_arguments)]
fn partitioned_step(
    step: &Step,
    input: &BindingTable,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    cores: usize,
    timer: &mut TaskTimer,
    tally: &mut FaultTally,
) -> BindingTable {
    let nodes = cluster.nodes();
    let mut parts: Vec<BindingTable> = (0..nodes)
        .map(|_| BindingTable::empty(input.width()))
        .collect();
    for row in input.iter() {
        match anchor_vid(step, row) {
            Some(v) => parts[cluster.owner(anchor_key(step, v)).idx()].push_row(row),
            None => parts[home.idx()].push_row(row),
        }
    }

    let faulty = cluster.fabric().faults_enabled();
    let policy = cluster.rpc_policy();
    let mut joined = BindingTable::empty(input.width());

    // Fork: run each non-empty partition on its owning node.
    //
    // Fault-free, the partitions execute on the home node's worker pool
    // (really concurrent when `worker_threads` > 1) and join back in
    // node order — the merge order, and therefore the result, is
    // identical for any pool width. Cost stays modelled either way: the
    // region's real time is excluded and the *maximum* per-partition
    // latency charged, since a real fork-join waits only for its slowest
    // partition.
    if !faulty {
        let work: Vec<(usize, &BindingTable)> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .collect();
        let region = std::time::Instant::now();
        // Pool workers have their own thread-locals: capture the calling
        // thread's recorder context and re-install it inside each task so
        // per-partition events keep the firing's causal attribution.
        let trace_ctx = wukong_obs::trace::current();
        let executed = cluster.pool(home).map(work, |_, (n, part)| {
            let _scope = trace_ctx
                .as_ref()
                .map(|(rec, fid, bid)| wukong_obs::trace::install_recorder(rec, *fid, *bid));
            let node = NodeId(n as u16);
            let access = NodeAccess::new(cluster, node);
            let started = std::time::Instant::now();
            let mut sub_timer = TaskTimer::start();
            let out = execute_step(step, part, ctx, &access, &mut sub_timer);
            let real = started.elapsed().as_nanos() as u64;
            // A partition's rows split across the node's per-query worker
            // cores (§6.4); messaging is not divisible.
            let c = cores.max(1).min(part.len().max(1)) as u64;
            let mut hop = (real + sub_timer.charged_ns()) / c;
            if node != home {
                let mut hop_timer = TaskTimer::start();
                cluster
                    .fabric()
                    .charge_message(home, node, part.wire_bytes(), &mut hop_timer);
                cluster
                    .fabric()
                    .charge_message(node, home, out.wire_bytes(), &mut hop_timer);
                hop += hop_timer.charged_ns();
            }
            (out, hop)
        });
        let mut max_hop = 0u64;
        for (out, hop) in executed {
            max_hop = max_hop.max(hop);
            for row in out.iter() {
                joined.push_row(row);
            }
        }
        timer.exclude(region.elapsed().as_nanos() as u64);
        timer.charge(max_hop);
        return joined;
    }

    // Under an installed fault plan remote partitions go through the
    // deadline-bounded RPC path, which owns the outer timer (per-attempt
    // waits, exclusions) — they stay sequential.
    let endpoints = cluster.fabric().endpoints::<u64>();
    let mut max_hop = 0u64;
    let mut sequential_real = 0u64;
    for (n, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let node = NodeId(n as u16);
        if node != home {
            let (out, hop) = rpc_partition(
                step,
                part,
                ctx,
                cluster,
                home,
                node,
                cores,
                &policy,
                &endpoints,
                timer,
                &mut sequential_real,
            );
            max_hop = max_hop.max(hop);
            match out {
                Some(out) => {
                    for row in out.iter() {
                        joined.push_row(row);
                    }
                }
                None => tally.unreachable.push(n as u16),
            }
            continue;
        }
        let access = NodeAccess::new(cluster, node);
        let started = std::time::Instant::now();
        let mut sub_timer = TaskTimer::start();
        let out = execute_step(step, part, ctx, &access, &mut sub_timer);
        let real = started.elapsed().as_nanos() as u64;
        sequential_real += real;
        let c = cores.max(1).min(part.len().max(1)) as u64;
        let hop = (real + sub_timer.charged_ns()) / c;
        max_hop = max_hop.max(hop);
        for row in out.iter() {
            joined.push_row(row);
        }
    }
    timer.exclude(sequential_real);
    timer.charge(max_hop);
    joined
}

/// Rewrites an index-scan step: fetch the subject list (from the index
/// vertex's owner), bind it into the table, and return the residual
/// subject-anchored step.
fn expand_index_scan(
    step: &Step,
    input: &BindingTable,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    timer: &mut TaskTimer,
) -> (BindingTable, Step) {
    let access = NodeAccess::new(cluster, home);
    let mut subjects = Vec::new();
    let t0 = std::time::Instant::now();
    access.neighbors(
        Key::index(step.pattern.p, Dir::Out),
        step.pattern.graph,
        ctx,
        timer,
        &mut subjects,
    );
    // Fork-join distributes the enumeration itself: every node scans its
    // slice of the (stream or predicate) index in parallel and ships its
    // subject list home. The scan above ran sequentially on this host, so
    // exclude its real time and charge the parallel cost: 1/nodes of the
    // scan plus one collection message per remote node.
    let scan_ns = t0.elapsed().as_nanos() as u64;
    timer.exclude(scan_ns);
    let nodes = cluster.nodes() as u64;
    let mut hop = TaskTimer::start();
    for m in 0..cluster.nodes() {
        let node = NodeId(m as u16);
        if node != home {
            cluster.fabric().charge_message(
                node,
                home,
                subjects.len() * std::mem::size_of::<Vid>() / cluster.nodes(),
                &mut hop,
            );
        }
    }
    timer.charge(scan_ns / nodes + hop.charged_ns() / nodes.max(1));
    // The index enumerates *candidate* subjects; window-scoped stream
    // indexes may surface a vertex once per touched batch, so dedup (the
    // in-place executor does the same).
    subjects.sort_unstable();
    subjects.dedup();
    let mut bound = BindingTable::empty(input.width());
    let s_var = step.pattern.s.var();
    for row in input.iter() {
        for &s in &subjects {
            match s_var {
                Some(v) if row[v as usize] == UNBOUND => bound.push_bound(row, v, s),
                Some(v) if row[v as usize] == s => bound.push_row(row),
                Some(_) => {}
                // Constant subjects never plan as index scans.
                None => bound.push_row(row),
            }
        }
    }
    (
        bound,
        Step {
            pattern: step.pattern,
            mode: StepMode::FromSubject,
            estimate: step.estimate,
        },
    )
}

/// Executes `plan` in fork-join mode from `home` with `cores` worker
/// cores serving the query on each node (§6.4's latency/resource knob).
#[allow(clippy::too_many_arguments)]
pub fn execute_forkjoin(
    query: &Query,
    plan: &Plan,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    cores: usize,
    lit: &impl LiteralResolver,
    timer: &mut TaskTimer,
) -> ResultSet {
    let mut trace = StageTrace::new();
    execute_forkjoin_traced(
        query, plan, ctx, cluster, home, cores, lit, timer, &mut trace,
    )
}

/// [`execute_forkjoin`] with staged latency attribution. The whole
/// matching phase lands in [`Stage::PatternMatch`]; within it, the
/// partitioned step loop is additionally attributed to
/// [`Stage::ForkJoinFanout`] and the home-node UNION / NOT EXISTS /
/// OPTIONAL joining to [`Stage::ForkJoinMerge`] (both overlap
/// `PatternMatch` — attribution, not additional latency). Projection
/// lands in [`Stage::ResultEmit`].
#[allow(clippy::too_many_arguments)]
pub fn execute_forkjoin_traced(
    query: &Query,
    plan: &Plan,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    cores: usize,
    lit: &impl LiteralResolver,
    timer: &mut TaskTimer,
    trace: &mut StageTrace,
) -> ResultSet {
    let mut table = BindingTable::seed(query.var_count as usize);
    let mut applied = vec![false; query.filters.len()];
    let mut tally = FaultTally::default();
    let t0 = timer.total_ns();
    let mut fanout_ns = 0u64;

    let match_span = wukong_obs::trace::scoped_span(Stage::PatternMatch);
    {
        let _fanout_span = wukong_obs::trace::scoped_span(Stage::ForkJoinFanout);
        for step in &plan.steps {
            let fork_start = timer.total_ns();
            let (input, anchored) = if step.mode == StepMode::IndexScan {
                expand_index_scan(step, &table, ctx, cluster, home, timer)
            } else {
                (table, *step)
            };
            table = partitioned_step(
                &anchored, &input, ctx, cluster, home, cores, timer, &mut tally,
            );
            fanout_ns += timer.total_ns().saturating_sub(fork_start);
            apply_ready_filters(&mut table, &query.filters, &mut applied, lit);
            if table.is_empty() {
                break;
            }
        }
    }

    // UNION and OPTIONAL blocks run in-place on the home node (they
    // expand rows branch by branch; remote reads are charged through the
    // access layer).
    let merge_start = timer.total_ns();
    let merge_span = wukong_obs::trace::scoped_span(Stage::ForkJoinMerge);
    let access = NodeAccess::new(cluster, home);
    let table = wukong_query::executor::apply_union(query, table, ctx, &access, timer);
    let table = wukong_query::executor::apply_not_exists(query, table, ctx, &access, timer);
    let table = wukong_query::executor::apply_optional(query, table, ctx, &access, timer);
    drop(merge_span);
    drop(match_span);
    let matched = timer.total_ns();
    trace.add(Stage::PatternMatch, matched.saturating_sub(t0));
    trace.add(Stage::ForkJoinFanout, fanout_ns);
    trace.add(Stage::ForkJoinMerge, matched.saturating_sub(merge_start));
    let emit_span = wukong_obs::trace::scoped_span(Stage::ResultEmit);
    let mut out = finalize(query, table, &applied, lit);
    drop(emit_span);
    trace.add(Stage::ResultEmit, timer.total_ns().saturating_sub(matched));
    if !tally.unreachable.is_empty() {
        tally.unreachable.sort_unstable();
        tally.unreachable.dedup();
        out.unreachable_shards = tally.unreachable;
        cluster.obs().faults().inc_degraded();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use wukong_net::TaskTimer;
    use wukong_query::exec::NoLiterals;
    use wukong_query::{parse_query, plan_query};
    use wukong_rdf::Triple;
    use wukong_store::SnapshotId;

    fn load_follow_graph(cluster: &Cluster, n: u64) {
        let ss = cluster.strings();
        let fo = ss.intern_predicate("fo").unwrap();
        let po = ss.intern_predicate("po").unwrap();
        for i in 0..n {
            let a = ss.intern_entity(&format!("u{i}")).unwrap();
            let b = ss.intern_entity(&format!("u{}", (i + 1) % n)).unwrap();
            cluster.load_base_triple(Triple::new(a, fo, b));
            let t = ss.intern_entity(&format!("t{i}")).unwrap();
            cluster.load_base_triple(Triple::new(a, po, t));
        }
    }

    #[test]
    fn forkjoin_matches_inplace_results() {
        let cluster = Cluster::new(&EngineConfig::cluster(4));
        load_follow_graph(&cluster, 64);
        let ss = cluster.strings();
        let q = parse_query(ss, "SELECT ?X ?Y ?Z WHERE { ?X fo ?Y . ?Y po ?Z }").unwrap();
        let ctx = ExecContext::stored(SnapshotId::BASE);

        let access = NodeAccess::new(&cluster, NodeId(0));
        let plan = plan_query(&q, &access, &ctx);
        let mut t1 = TaskTimer::start();
        let inplace = wukong_query::execute(&q, &plan, &ctx, &access, &NoLiterals, &mut t1);

        let mut t2 = TaskTimer::start();
        let forkjoin = execute_forkjoin(
            &q,
            &plan,
            &ctx,
            &cluster,
            NodeId(0),
            1,
            &NoLiterals,
            &mut t2,
        );

        assert_eq!(inplace.rows.len(), 64);
        let mut a = inplace.rows.clone();
        let mut b = forkjoin.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_plans_agree_across_executors() {
        // Single-pattern (no join), fully-constant first pattern
        // (existence filter), and empty-OPTIONAL queries must produce the
        // same rows in-place and fork-join.
        let cluster = Cluster::new(&EngineConfig::cluster(4));
        load_follow_graph(&cluster, 32);
        let ss = cluster.strings();
        let ctx = ExecContext::stored(SnapshotId::BASE);
        for (text, expect) in [
            // One pattern, nothing to join.
            ("SELECT ?X WHERE { u0 fo ?X }", 1),
            // First pattern binds zero variables and holds.
            ("SELECT ?X WHERE { u0 fo u1 . u0 po ?X }", 1),
            // First pattern binds zero variables and fails: existence
            // filter kills every row.
            ("SELECT ?X WHERE { u0 fo u5 . u0 po ?X }", 0),
            // Empty OPTIONAL is inert.
            ("SELECT ?X WHERE { u0 po ?X OPTIONAL { } }", 1),
        ] {
            let q = parse_query(ss, text).unwrap();
            let access = NodeAccess::new(&cluster, NodeId(0));
            let plan = plan_query(&q, &access, &ctx);
            let mut t1 = TaskTimer::start();
            let inplace = wukong_query::execute(&q, &plan, &ctx, &access, &NoLiterals, &mut t1);
            let mut t2 = TaskTimer::start();
            let forked = execute_forkjoin(
                &q,
                &plan,
                &ctx,
                &cluster,
                NodeId(0),
                1,
                &NoLiterals,
                &mut t2,
            );
            assert_eq!(inplace.rows.len(), expect, "{text}");
            let mut a = inplace.rows.clone();
            let mut b = forked.rows.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{text}");
        }
    }

    #[test]
    fn forkjoin_charges_fork_messages() {
        let cluster = Cluster::new(&EngineConfig::cluster(4));
        load_follow_graph(&cluster, 64);
        let ss = cluster.strings();
        let q = parse_query(ss, "SELECT ?X ?Y WHERE { ?X fo ?Y }").unwrap();
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let access = NodeAccess::new(&cluster, NodeId(0));
        let plan = plan_query(&q, &access, &ctx);

        let before = cluster.fabric().metrics();
        let mut timer = TaskTimer::start();
        let rs = execute_forkjoin(
            &q,
            &plan,
            &ctx,
            &cluster,
            NodeId(0),
            1,
            &NoLiterals,
            &mut timer,
        );
        let delta = before.delta(&cluster.fabric().metrics());
        assert_eq!(rs.rows.len(), 64);
        assert!(delta.messages > 0, "fork-join must message remote nodes");
    }

    fn run_two_hop(cluster: &Cluster) -> ResultSet {
        let ss = cluster.strings();
        let q = parse_query(ss, "SELECT ?X ?Y ?Z WHERE { ?X fo ?Y . ?Y po ?Z }").unwrap();
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let access = NodeAccess::new(cluster, NodeId(0));
        let plan = plan_query(&q, &access, &ctx);
        let mut t = TaskTimer::start();
        execute_forkjoin(&q, &plan, &ctx, cluster, NodeId(0), 1, &NoLiterals, &mut t)
    }

    #[test]
    fn forkjoin_rpc_survives_lossy_links() {
        use wukong_net::FaultPlan;
        let cfg = EngineConfig {
            fault_plan: Some(FaultPlan::seeded(42).lossy(0.25, 0.1)),
            ..EngineConfig::cluster(4)
        };
        let cluster = Cluster::new(&cfg);
        load_follow_graph(&cluster, 64);
        let rs = run_two_hop(&cluster);
        assert!(
            rs.unreachable_shards.is_empty(),
            "retries must repair a 25% lossy link (seed-dependent; pick another seed)"
        );
        assert_eq!(rs.rows.len(), 64, "no rows may be lost to retries");
        let snap = cluster.obs().faults().snapshot();
        assert!(
            snap.msgs_dropped > 0,
            "a 25% lossy link must drop something, got {snap:?}"
        );
    }

    #[test]
    fn forkjoin_degrades_when_a_shard_dies() {
        use wukong_net::FaultPlan;
        let cfg = EngineConfig {
            fault_plan: Some(FaultPlan::seeded(1)),
            ..EngineConfig::cluster(4)
        };
        let cluster = Cluster::new(&cfg);
        load_follow_graph(&cluster, 64);
        assert!(cluster.fabric().kill_node(NodeId(2)));

        let rs = run_two_hop(&cluster);
        assert_eq!(rs.unreachable_shards, vec![2], "dead shard must be tagged");
        assert!(
            rs.rows.len() < 64,
            "partial answer must miss the dead shard's rows"
        );
        let snap = cluster.obs().faults().snapshot();
        assert!(snap.rpc_timeouts > 0);
        assert!(snap.rpc_retries > 0);
        assert_eq!(snap.degraded_answers, 1);

        // Restarting the shard heals execution (state is in-process).
        assert!(cluster.fabric().restart_node(NodeId(2)));
        let healed = run_two_hop(&cluster);
        assert!(healed.unreachable_shards.is_empty());
        assert_eq!(healed.rows.len(), 64);
    }
}
