//! Fork-join distributed execution (§5, §6.2).
//!
//! Non-selective queries spread their work: at every exploration step the
//! binding table partitions by the owner node of each row's anchor
//! vertex, the partitions execute in parallel on their owning nodes (no
//! remote reads inside a partition), and results join back at the home
//! node. Each hop with a non-empty remote partition charges a fork
//! message carrying the rows and a join message carrying the results —
//! this synchronisation is why fork-join trails in-place execution for
//! selective queries (Table 5) yet wins for queries that scan large
//! portions of the stored graph (Fig. 12's group II speedup).

use crate::access::NodeAccess;
use crate::cluster::Cluster;
use wukong_net::{NodeId, TaskTimer};
use wukong_obs::{Stage, StageTrace};
use wukong_query::ast::Term;
use wukong_query::bindings::{BindingTable, UNBOUND};
use wukong_query::exec::{ExecContext, GraphAccess, LiteralResolver};
use wukong_query::plan::{Plan, Step, StepMode};
use wukong_query::{apply_ready_filters, execute_step, finalize, Query, ResultSet};
use wukong_rdf::{Dir, Key, Vid};

fn anchor_vid(step: &Step, row: &[Vid]) -> Option<Vid> {
    let term = match step.mode {
        StepMode::FromSubject => step.pattern.s,
        StepMode::FromObject => step.pattern.o,
        StepMode::IndexScan => return None,
    };
    match term {
        Term::Const(c) => Some(c),
        Term::Var(v) => {
            let val = row[v as usize];
            (val != UNBOUND).then_some(val)
        }
    }
}

fn anchor_key(step: &Step, v: Vid) -> Key {
    match step.mode {
        StepMode::FromSubject => Key::new(v, step.pattern.p, Dir::Out),
        StepMode::FromObject => Key::new(v, step.pattern.p, Dir::In),
        StepMode::IndexScan => unreachable!("index scans are rewritten before partitioning"),
    }
}

/// Executes one anchored step with per-node partitioning and parallel
/// workers; returns the joined table.
fn partitioned_step(
    step: &Step,
    input: &BindingTable,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    cores: usize,
    timer: &mut TaskTimer,
) -> BindingTable {
    let nodes = cluster.nodes();
    let mut parts: Vec<BindingTable> = (0..nodes)
        .map(|_| BindingTable::empty(input.width()))
        .collect();
    for row in input.iter() {
        match anchor_vid(step, row) {
            Some(v) => parts[cluster.owner(anchor_key(step, v)).idx()].push_row(row),
            None => parts[home.idx()].push_row(row),
        }
    }

    // Fork: run each non-empty partition on its owning node. Partitions
    // execute sequentially here (the host may have a single core), but a
    // real fork-join runs them in parallel: each partition's real time is
    // measured, the *maximum* per-partition latency is charged, and the
    // sequential sum is excluded from the outer timer.
    let mut joined = BindingTable::empty(input.width());
    let mut max_hop = 0u64;
    let mut sequential_real = 0u64;
    for (n, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let node = NodeId(n as u16);
        let access = NodeAccess::new(cluster, node);
        let started = std::time::Instant::now();
        let mut sub_timer = TaskTimer::start();
        let out = execute_step(step, part, ctx, &access, &mut sub_timer);
        let real = started.elapsed().as_nanos() as u64;
        sequential_real += real;
        // A partition's rows split across the node's per-query worker
        // cores (§6.4); messaging is not divisible.
        let c = cores.max(1).min(part.len().max(1)) as u64;
        let mut hop = (real + sub_timer.charged_ns()) / c;
        if node != home {
            let mut hop_timer = TaskTimer::start();
            cluster
                .fabric()
                .charge_message(home, node, part.wire_bytes(), &mut hop_timer);
            cluster
                .fabric()
                .charge_message(node, home, out.wire_bytes(), &mut hop_timer);
            hop += hop_timer.charged_ns();
        }
        max_hop = max_hop.max(hop);
        for row in out.iter() {
            joined.push_row(row);
        }
    }
    timer.exclude(sequential_real);
    timer.charge(max_hop);
    joined
}

/// Rewrites an index-scan step: fetch the subject list (from the index
/// vertex's owner), bind it into the table, and return the residual
/// subject-anchored step.
fn expand_index_scan(
    step: &Step,
    input: &BindingTable,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    timer: &mut TaskTimer,
) -> (BindingTable, Step) {
    let access = NodeAccess::new(cluster, home);
    let mut subjects = Vec::new();
    let t0 = std::time::Instant::now();
    access.neighbors(
        Key::index(step.pattern.p, Dir::Out),
        step.pattern.graph,
        ctx,
        timer,
        &mut subjects,
    );
    // Fork-join distributes the enumeration itself: every node scans its
    // slice of the (stream or predicate) index in parallel and ships its
    // subject list home. The scan above ran sequentially on this host, so
    // exclude its real time and charge the parallel cost: 1/nodes of the
    // scan plus one collection message per remote node.
    let scan_ns = t0.elapsed().as_nanos() as u64;
    timer.exclude(scan_ns);
    let nodes = cluster.nodes() as u64;
    let mut hop = TaskTimer::start();
    for m in 0..cluster.nodes() {
        let node = NodeId(m as u16);
        if node != home {
            cluster.fabric().charge_message(
                node,
                home,
                subjects.len() * std::mem::size_of::<Vid>() / cluster.nodes(),
                &mut hop,
            );
        }
    }
    timer.charge(scan_ns / nodes + hop.charged_ns() / nodes.max(1));
    // The index enumerates *candidate* subjects; window-scoped stream
    // indexes may surface a vertex once per touched batch, so dedup (the
    // in-place executor does the same).
    subjects.sort_unstable();
    subjects.dedup();
    let mut bound = BindingTable::empty(input.width());
    let s_var = step.pattern.s.var();
    for row in input.iter() {
        for &s in &subjects {
            match s_var {
                Some(v) if row[v as usize] == UNBOUND => bound.push_bound(row, v, s),
                Some(v) if row[v as usize] == s => bound.push_row(row),
                Some(_) => {}
                // Constant subjects never plan as index scans.
                None => bound.push_row(row),
            }
        }
    }
    (
        bound,
        Step {
            pattern: step.pattern,
            mode: StepMode::FromSubject,
            estimate: step.estimate,
        },
    )
}

/// Executes `plan` in fork-join mode from `home` with `cores` worker
/// cores serving the query on each node (§6.4's latency/resource knob).
#[allow(clippy::too_many_arguments)]
pub fn execute_forkjoin(
    query: &Query,
    plan: &Plan,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    cores: usize,
    lit: &impl LiteralResolver,
    timer: &mut TaskTimer,
) -> ResultSet {
    let mut trace = StageTrace::new();
    execute_forkjoin_traced(
        query, plan, ctx, cluster, home, cores, lit, timer, &mut trace,
    )
}

/// [`execute_forkjoin`] with staged latency attribution. The whole
/// matching phase lands in [`Stage::PatternMatch`]; within it, the
/// partitioned step loop is additionally attributed to
/// [`Stage::ForkJoinFanout`] and the home-node UNION / NOT EXISTS /
/// OPTIONAL joining to [`Stage::ForkJoinMerge`] (both overlap
/// `PatternMatch` — attribution, not additional latency). Projection
/// lands in [`Stage::ResultEmit`].
#[allow(clippy::too_many_arguments)]
pub fn execute_forkjoin_traced(
    query: &Query,
    plan: &Plan,
    ctx: &ExecContext,
    cluster: &Cluster,
    home: NodeId,
    cores: usize,
    lit: &impl LiteralResolver,
    timer: &mut TaskTimer,
    trace: &mut StageTrace,
) -> ResultSet {
    let mut table = BindingTable::seed(query.var_count as usize);
    let mut applied = vec![false; query.filters.len()];
    let t0 = timer.total_ns();
    let mut fanout_ns = 0u64;

    for step in &plan.steps {
        let fork_start = timer.total_ns();
        let (input, anchored) = if step.mode == StepMode::IndexScan {
            expand_index_scan(step, &table, ctx, cluster, home, timer)
        } else {
            (table, *step)
        };
        table = partitioned_step(&anchored, &input, ctx, cluster, home, cores, timer);
        fanout_ns += timer.total_ns().saturating_sub(fork_start);
        apply_ready_filters(&mut table, &query.filters, &mut applied, lit);
        if table.is_empty() {
            break;
        }
    }

    // UNION and OPTIONAL blocks run in-place on the home node (they
    // expand rows branch by branch; remote reads are charged through the
    // access layer).
    let merge_start = timer.total_ns();
    let access = NodeAccess::new(cluster, home);
    let table = wukong_query::executor::apply_union(query, table, ctx, &access, timer);
    let table = wukong_query::executor::apply_not_exists(query, table, ctx, &access, timer);
    let table = wukong_query::executor::apply_optional(query, table, ctx, &access, timer);
    let matched = timer.total_ns();
    trace.add(Stage::PatternMatch, matched.saturating_sub(t0));
    trace.add(Stage::ForkJoinFanout, fanout_ns);
    trace.add(Stage::ForkJoinMerge, matched.saturating_sub(merge_start));
    let out = finalize(query, table, &applied, lit);
    trace.add(Stage::ResultEmit, timer.total_ns().saturating_sub(matched));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use wukong_net::TaskTimer;
    use wukong_query::exec::NoLiterals;
    use wukong_query::{parse_query, plan_query};
    use wukong_rdf::Triple;
    use wukong_store::SnapshotId;

    fn load_follow_graph(cluster: &Cluster, n: u64) {
        let ss = cluster.strings();
        let fo = ss.intern_predicate("fo").unwrap();
        let po = ss.intern_predicate("po").unwrap();
        for i in 0..n {
            let a = ss.intern_entity(&format!("u{i}")).unwrap();
            let b = ss.intern_entity(&format!("u{}", (i + 1) % n)).unwrap();
            cluster.load_base_triple(Triple::new(a, fo, b));
            let t = ss.intern_entity(&format!("t{i}")).unwrap();
            cluster.load_base_triple(Triple::new(a, po, t));
        }
    }

    #[test]
    fn forkjoin_matches_inplace_results() {
        let cluster = Cluster::new(&EngineConfig::cluster(4));
        load_follow_graph(&cluster, 64);
        let ss = cluster.strings();
        let q = parse_query(ss, "SELECT ?X ?Y ?Z WHERE { ?X fo ?Y . ?Y po ?Z }").unwrap();
        let ctx = ExecContext::stored(SnapshotId::BASE);

        let access = NodeAccess::new(&cluster, NodeId(0));
        let plan = plan_query(&q, &access, &ctx);
        let mut t1 = TaskTimer::start();
        let inplace = wukong_query::execute(&q, &plan, &ctx, &access, &NoLiterals, &mut t1);

        let mut t2 = TaskTimer::start();
        let forkjoin = execute_forkjoin(
            &q,
            &plan,
            &ctx,
            &cluster,
            NodeId(0),
            1,
            &NoLiterals,
            &mut t2,
        );

        assert_eq!(inplace.rows.len(), 64);
        let mut a = inplace.rows.clone();
        let mut b = forkjoin.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn forkjoin_charges_fork_messages() {
        let cluster = Cluster::new(&EngineConfig::cluster(4));
        load_follow_graph(&cluster, 64);
        let ss = cluster.strings();
        let q = parse_query(ss, "SELECT ?X ?Y WHERE { ?X fo ?Y }").unwrap();
        let ctx = ExecContext::stored(SnapshotId::BASE);
        let access = NodeAccess::new(&cluster, NodeId(0));
        let plan = plan_query(&q, &access, &ctx);

        let before = cluster.fabric().metrics();
        let mut timer = TaskTimer::start();
        let rs = execute_forkjoin(
            &q,
            &plan,
            &ctx,
            &cluster,
            NodeId(0),
            1,
            &NoLiterals,
            &mut timer,
        );
        let delta = before.delta(&cluster.fabric().metrics());
        assert_eq!(rs.rows.len(), 64);
        assert!(delta.messages > 0, "fork-join must message remote nodes");
    }
}
