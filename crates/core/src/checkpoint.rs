//! Fault tolerance: logging, checkpointing, recovery (§5).
//!
//! Wukong+S assumes upstream backup at the sources and provides
//! at-least-once semantics to continuous queries. The engine logs, per
//! machine and in the background, (a) every registered continuous query
//! and (b) the streaming data injected since the last checkpoint, plus the
//! local/stable vector timestamps. Recovery reloads the initial RDF data,
//! replays checkpoints in order, re-registers the queries and restores the
//! timestamps.
//!
//! The wire format is a small hand-rolled binary encoding over the
//! `bytes` crate (the workspace deliberately carries no serde *format*
//! crate).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use wukong_rdf::{Pid, StreamTuple, Timestamp, Triple, TupleKind, Vid};

/// Magic number heading every checkpoint.
const MAGIC: u32 = 0x574b_5343; // "WKSC"
const VERSION: u8 = 2;

/// One logged stream batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedBatch {
    /// Cluster stream index.
    pub stream: u16,
    /// Batch timestamp.
    pub timestamp: Timestamp,
    /// The batch's tuples (both timing and timeless — both must replay).
    pub tuples: Vec<StreamTuple>,
}

/// A registered query as persisted: its text plus, for `CONSTRUCT`
/// queries, the derived stream its firings feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedQuery {
    /// The original C-SPARQL text.
    pub text: String,
    /// Derived-stream target (cluster stream index), if any.
    pub construct_target: Option<u16>,
}

/// A durable checkpoint of the engine's streaming state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Per-node local VTS entries (`[node][stream]`).
    pub local_vts: Vec<Vec<Timestamp>>,
    /// Registered continuous queries, in registration order.
    pub queries: Vec<LoggedQuery>,
    /// Stream batches since the previous checkpoint, in injection order.
    pub batches: Vec<LoggedBatch>,
}

/// Errors decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The buffer ended mid-record.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a Wukong+S checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadUtf8 => write!(f, "invalid UTF-8 in checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl Checkpoint {
    /// Serialises the checkpoint.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32(MAGIC);
        b.put_u8(VERSION);

        b.put_u16(self.local_vts.len() as u16);
        b.put_u16(self.local_vts.first().map(Vec::len).unwrap_or(0) as u16);
        for node in &self.local_vts {
            for &ts in node {
                b.put_u64(ts);
            }
        }

        b.put_u32(self.queries.len() as u32);
        for q in &self.queries {
            b.put_u32(q.text.len() as u32);
            b.put_slice(q.text.as_bytes());
            match q.construct_target {
                Some(t) => {
                    b.put_u8(1);
                    b.put_u16(t);
                }
                None => b.put_u8(0),
            }
        }

        b.put_u32(self.batches.len() as u32);
        for batch in &self.batches {
            b.put_u16(batch.stream);
            b.put_u64(batch.timestamp);
            b.put_u32(batch.tuples.len() as u32);
            for t in &batch.tuples {
                b.put_u64(t.triple.s.0);
                b.put_u64(t.triple.p.0);
                b.put_u64(t.triple.o.0);
                b.put_u64(t.timestamp);
                b.put_u8(match t.kind {
                    TupleKind::Timeless => 0,
                    TupleKind::Timing => 1,
                });
            }
        }
        b.freeze()
    }

    /// Deserialises a checkpoint.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CheckpointError> {
        fn need(buf: &[u8], n: usize) -> Result<(), CheckpointError> {
            if buf.remaining() < n {
                Err(CheckpointError::Truncated)
            } else {
                Ok(())
            }
        }

        need(buf, 5)?;
        if buf.get_u32() != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let v = buf.get_u8();
        if v != VERSION {
            return Err(CheckpointError::BadVersion(v));
        }

        need(buf, 4)?;
        let nodes = buf.get_u16() as usize;
        let streams = buf.get_u16() as usize;
        let mut local_vts = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            need(buf, streams * 8)?;
            local_vts.push((0..streams).map(|_| buf.get_u64()).collect());
        }

        need(buf, 4)?;
        let nq = buf.get_u32() as usize;
        // Cap the pre-allocation by what the buffer could possibly hold
        // (≥ 5 bytes per query record): a corrupt count must fail with
        // `Truncated`, not allocate gigabytes first.
        let mut queries = Vec::with_capacity(nq.min(buf.remaining() / 5));
        for _ in 0..nq {
            need(buf, 4)?;
            let len = buf.get_u32() as usize;
            need(buf, len)?;
            let text = std::str::from_utf8(&buf[..len])
                .map_err(|_| CheckpointError::BadUtf8)?
                .to_owned();
            buf.advance(len);
            need(buf, 1)?;
            let construct_target = match buf.get_u8() {
                0 => None,
                _ => {
                    need(buf, 2)?;
                    Some(buf.get_u16())
                }
            };
            queries.push(LoggedQuery {
                text,
                construct_target,
            });
        }

        need(buf, 4)?;
        let nb = buf.get_u32() as usize;
        // Same capacity cap as above (≥ 14 bytes per batch record).
        let mut batches = Vec::with_capacity(nb.min(buf.remaining() / 14));
        for _ in 0..nb {
            need(buf, 14)?;
            let stream = buf.get_u16();
            let timestamp = buf.get_u64();
            let nt = buf.get_u32() as usize;
            need(buf, nt * 33)?;
            let mut tuples = Vec::with_capacity(nt);
            for _ in 0..nt {
                let s = Vid(buf.get_u64());
                let p = Pid(buf.get_u64());
                let o = Vid(buf.get_u64());
                let ts = buf.get_u64();
                let kind = match buf.get_u8() {
                    0 => TupleKind::Timeless,
                    _ => TupleKind::Timing,
                };
                tuples.push(StreamTuple {
                    triple: Triple::new(s, p, o),
                    timestamp: ts,
                    kind,
                });
            }
            batches.push(LoggedBatch {
                stream,
                timestamp,
                tuples,
            });
        }

        Ok(Checkpoint {
            local_vts,
            queries,
            batches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            local_vts: vec![vec![100, 50], vec![100, 50]],
            queries: vec![
                LoggedQuery {
                    text: "REGISTER QUERY q SELECT ?X …".into(),
                    construct_target: None,
                },
                LoggedQuery {
                    text: "REGISTER QUERY d CONSTRUCT { ?X a ?Y } …".into(),
                    construct_target: Some(3),
                },
            ],
            batches: vec![LoggedBatch {
                stream: 1,
                timestamp: 100,
                tuples: vec![
                    StreamTuple::timeless(Triple::new(Vid(1), Pid(2), Vid(3)), 80),
                    StreamTuple::timing(Triple::new(Vid(4), Pid(5), Vid(6)), 90),
                ],
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let bytes = c.encode();
        assert_eq!(Checkpoint::decode(&bytes).unwrap(), c);
    }

    #[test]
    fn empty_roundtrip() {
        let c = Checkpoint::default();
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            Checkpoint::decode(&[0, 0, 0, 0, 1]),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn truncation_detected_everywhere() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            match Checkpoint::decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(c) => panic!("decode of {cut}-byte prefix unexpectedly succeeded: {c:?}"),
            }
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = sample().encode().to_vec();
        b[4] = 99;
        assert_eq!(Checkpoint::decode(&b), Err(CheckpointError::BadVersion(99)));
    }
}
