//! Fault tolerance: logging, checkpointing, recovery (§5).
//!
//! Wukong+S assumes upstream backup at the sources and provides
//! at-least-once semantics to continuous queries. The engine logs, per
//! machine and in the background, (a) every registered continuous query
//! and (b) the streaming data injected since the last checkpoint, plus the
//! local/stable vector timestamps. Recovery reloads the initial RDF data,
//! replays checkpoints in order, re-registers the queries and restores the
//! timestamps.
//!
//! The wire format is a small hand-rolled binary encoding over the
//! `bytes` crate (the workspace deliberately carries no serde *format*
//! crate). Version 3 adds integrity: a length-prefixed header protected
//! by its own checksum, one FNV-1a checksum per section, and strict
//! end-of-buffer checks, so any single-bit flip anywhere in the image is
//! rejected at decode (DESIGN.md §13) instead of silently poisoning the
//! recovered engine.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use wukong_rdf::{Pid, StreamTuple, Timestamp, Triple, TupleKind, Vid};

/// Magic number heading every checkpoint.
const MAGIC: u32 = 0x574b_5343; // "WKSC"
const VERSION: u8 = 3;

/// FNV-1a over a byte slice. Single-bit-flip detection over fixed-length
/// inputs is exact: each step is `xor` then multiply by an odd prime —
/// both bijections on `u64` — so two inputs differing in one byte can
/// never hash equal (the differing step produces distinct states, and
/// every following step maps distinct states to distinct states).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// One logged stream batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedBatch {
    /// Cluster stream index.
    pub stream: u16,
    /// Batch timestamp.
    pub timestamp: Timestamp,
    /// The batch's tuples (both timing and timeless — both must replay).
    pub tuples: Vec<StreamTuple>,
}

/// A registered query as persisted: its text plus, for `CONSTRUCT`
/// queries, the derived stream its firings feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedQuery {
    /// The original C-SPARQL text.
    pub text: String,
    /// Derived-stream target (cluster stream index), if any.
    pub construct_target: Option<u16>,
}

/// A durable checkpoint of the engine's streaming state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Per-node local VTS entries (`[node][stream]`).
    pub local_vts: Vec<Vec<Timestamp>>,
    /// Registered continuous queries, in registration order.
    pub queries: Vec<LoggedQuery>,
    /// Stream batches since the previous checkpoint, in injection order.
    pub batches: Vec<LoggedBatch>,
}

/// Errors decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The buffer ended mid-record.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A section's stored checksum does not match its bytes.
    ChecksumMismatch(&'static str),
    /// Bytes remain after the final section.
    TrailingGarbage,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a Wukong+S checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadUtf8 => write!(f, "invalid UTF-8 in checkpoint"),
            CheckpointError::ChecksumMismatch(section) => {
                write!(f, "checkpoint {section} section failed checksum")
            }
            CheckpointError::TrailingGarbage => {
                write!(f, "checkpoint has trailing bytes after the final section")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn need(buf: &[u8], n: usize) -> Result<(), CheckpointError> {
    if buf.remaining() < n {
        Err(CheckpointError::Truncated)
    } else {
        Ok(())
    }
}

impl Checkpoint {
    fn encode_vts(&self) -> BytesMut {
        let mut b = BytesMut::new();
        b.put_u16(self.local_vts.len() as u16);
        b.put_u16(self.local_vts.first().map(Vec::len).unwrap_or(0) as u16);
        for node in &self.local_vts {
            for &ts in node {
                b.put_u64(ts);
            }
        }
        b
    }

    fn encode_queries(&self) -> BytesMut {
        let mut b = BytesMut::new();
        b.put_u32(self.queries.len() as u32);
        for q in &self.queries {
            b.put_u32(q.text.len() as u32);
            b.put_slice(q.text.as_bytes());
            match q.construct_target {
                Some(t) => {
                    b.put_u8(1);
                    b.put_u16(t);
                }
                None => b.put_u8(0),
            }
        }
        b
    }

    fn encode_batches(&self) -> BytesMut {
        let mut b = BytesMut::new();
        b.put_u32(self.batches.len() as u32);
        for batch in &self.batches {
            b.put_u16(batch.stream);
            b.put_u64(batch.timestamp);
            b.put_u32(batch.tuples.len() as u32);
            for t in &batch.tuples {
                b.put_u64(t.triple.s.0);
                b.put_u64(t.triple.p.0);
                b.put_u64(t.triple.o.0);
                b.put_u64(t.timestamp);
                b.put_u8(match t.kind {
                    TupleKind::Timeless => 0,
                    TupleKind::Timing => 1,
                });
            }
        }
        b
    }

    /// Serialises the checkpoint.
    ///
    /// Layout (v3): `magic u32 | version u8 | vts_len u32 | queries_len
    /// u32 | batches_len u32 | header_fnv u64`, then each section's bytes
    /// immediately followed by its own FNV-1a checksum (u64). The header
    /// checksum covers the 17 bytes before it, so a flipped length field
    /// cannot silently re-frame the sections.
    pub fn encode(&self) -> Bytes {
        let vts = self.encode_vts();
        let queries = self.encode_queries();
        let batches = self.encode_batches();

        let mut b = BytesMut::new();
        b.put_u32(MAGIC);
        b.put_u8(VERSION);
        b.put_u32(vts.len() as u32);
        b.put_u32(queries.len() as u32);
        b.put_u32(batches.len() as u32);
        let header_fnv = fnv1a(&b);
        b.put_u64(header_fnv);
        for section in [&vts, &queries, &batches] {
            b.put_slice(section);
            b.put_u64(fnv1a(section));
        }
        b.freeze()
    }

    /// Splits off one checksummed section: verifies length availability
    /// and the trailing FNV before handing back the payload slice.
    fn take_section<'a>(
        buf: &mut &'a [u8],
        len: usize,
        name: &'static str,
    ) -> Result<&'a [u8], CheckpointError> {
        need(buf, len + 8)?;
        let (payload, rest) = buf.split_at(len);
        let mut rest = rest;
        let stored = rest.get_u64();
        if fnv1a(payload) != stored {
            return Err(CheckpointError::ChecksumMismatch(name));
        }
        *buf = rest;
        Ok(payload)
    }

    fn decode_vts(mut buf: &[u8]) -> Result<Vec<Vec<Timestamp>>, CheckpointError> {
        need(buf, 4)?;
        let nodes = buf.get_u16() as usize;
        let streams = buf.get_u16() as usize;
        let mut local_vts = Vec::with_capacity(nodes.min(buf.remaining() / 8 + 1));
        for _ in 0..nodes {
            need(buf, streams * 8)?;
            local_vts.push((0..streams).map(|_| buf.get_u64()).collect());
        }
        if buf.has_remaining() {
            return Err(CheckpointError::TrailingGarbage);
        }
        Ok(local_vts)
    }

    fn decode_queries(mut buf: &[u8]) -> Result<Vec<LoggedQuery>, CheckpointError> {
        need(buf, 4)?;
        let nq = buf.get_u32() as usize;
        // Cap the pre-allocation by what the buffer could possibly hold
        // (≥ 5 bytes per query record): a corrupt count must fail with
        // `Truncated`, not allocate gigabytes first.
        let mut queries = Vec::with_capacity(nq.min(buf.remaining() / 5));
        for _ in 0..nq {
            need(buf, 4)?;
            let len = buf.get_u32() as usize;
            need(buf, len)?;
            let text = std::str::from_utf8(&buf[..len])
                .map_err(|_| CheckpointError::BadUtf8)?
                .to_owned();
            buf.advance(len);
            need(buf, 1)?;
            let construct_target = match buf.get_u8() {
                0 => None,
                _ => {
                    need(buf, 2)?;
                    Some(buf.get_u16())
                }
            };
            queries.push(LoggedQuery {
                text,
                construct_target,
            });
        }
        if buf.has_remaining() {
            return Err(CheckpointError::TrailingGarbage);
        }
        Ok(queries)
    }

    fn decode_batches(mut buf: &[u8]) -> Result<Vec<LoggedBatch>, CheckpointError> {
        need(buf, 4)?;
        let nb = buf.get_u32() as usize;
        // Same capacity cap as above (≥ 14 bytes per batch record).
        let mut batches = Vec::with_capacity(nb.min(buf.remaining() / 14));
        for _ in 0..nb {
            need(buf, 14)?;
            let stream = buf.get_u16();
            let timestamp = buf.get_u64();
            let nt = buf.get_u32() as usize;
            need(buf, nt * 33)?;
            let mut tuples = Vec::with_capacity(nt);
            for _ in 0..nt {
                let s = Vid(buf.get_u64());
                let p = Pid(buf.get_u64());
                let o = Vid(buf.get_u64());
                let ts = buf.get_u64();
                let kind = match buf.get_u8() {
                    0 => TupleKind::Timeless,
                    _ => TupleKind::Timing,
                };
                tuples.push(StreamTuple {
                    triple: Triple::new(s, p, o),
                    timestamp: ts,
                    kind,
                });
            }
            batches.push(LoggedBatch {
                stream,
                timestamp,
                tuples,
            });
        }
        if buf.has_remaining() {
            return Err(CheckpointError::TrailingGarbage);
        }
        Ok(batches)
    }

    /// Deserialises a checkpoint, verifying the header checksum, every
    /// section checksum, and that no bytes trail the final section.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CheckpointError> {
        need(buf, 25)?;
        let header_fnv = fnv1a(&buf[..17]);
        if buf.get_u32() != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let v = buf.get_u8();
        if v != VERSION {
            return Err(CheckpointError::BadVersion(v));
        }
        let vts_len = buf.get_u32() as usize;
        let queries_len = buf.get_u32() as usize;
        let batches_len = buf.get_u32() as usize;
        if header_fnv != buf.get_u64() {
            return Err(CheckpointError::ChecksumMismatch("header"));
        }

        let local_vts = Self::decode_vts(Self::take_section(&mut buf, vts_len, "vts")?)?;
        let queries = Self::decode_queries(Self::take_section(&mut buf, queries_len, "queries")?)?;
        let batches = Self::decode_batches(Self::take_section(&mut buf, batches_len, "batches")?)?;

        if buf.has_remaining() {
            return Err(CheckpointError::TrailingGarbage);
        }
        Ok(Checkpoint {
            local_vts,
            queries,
            batches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            local_vts: vec![vec![100, 50], vec![100, 50]],
            queries: vec![
                LoggedQuery {
                    text: "REGISTER QUERY q SELECT ?X …".into(),
                    construct_target: None,
                },
                LoggedQuery {
                    text: "REGISTER QUERY d CONSTRUCT { ?X a ?Y } …".into(),
                    construct_target: Some(3),
                },
            ],
            batches: vec![LoggedBatch {
                stream: 1,
                timestamp: 100,
                tuples: vec![
                    StreamTuple::timeless(Triple::new(Vid(1), Pid(2), Vid(3)), 80),
                    StreamTuple::timing(Triple::new(Vid(4), Pid(5), Vid(6)), 90),
                ],
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let bytes = c.encode();
        assert_eq!(Checkpoint::decode(&bytes).unwrap(), c);
    }

    #[test]
    fn empty_roundtrip() {
        let c = Checkpoint::default();
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            Checkpoint::decode(&[0u8; 25]),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn truncation_detected_everywhere() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            match Checkpoint::decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(c) => panic!("decode of {cut}-byte prefix unexpectedly succeeded: {c:?}"),
            }
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = sample().encode().to_vec();
        b[4] = 99;
        assert_eq!(Checkpoint::decode(&b), Err(CheckpointError::BadVersion(99)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut b = sample().encode().to_vec();
        b.push(0);
        assert_eq!(
            Checkpoint::decode(&b),
            Err(CheckpointError::TrailingGarbage)
        );
        let mut b = sample().encode().to_vec();
        b.extend_from_slice(&sample().encode());
        assert_eq!(
            Checkpoint::decode(&b),
            Err(CheckpointError::TrailingGarbage)
        );
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample().encode().to_vec();
        for bit in 0..bytes.len() * 8 {
            let mut b = bytes.clone();
            b[bit / 8] ^= 1 << (bit % 8);
            match Checkpoint::decode(&b) {
                Err(_) => {}
                Ok(c) => panic!("bit flip at {bit} decoded cleanly: {c:?}"),
            }
        }
    }

    #[test]
    fn section_checksums_name_the_site() {
        // Flip a bit deep inside the batches section (last section,
        // after the 25-byte header and both earlier sections).
        let c = sample();
        let bytes = c.encode().to_vec();
        let mut b = bytes.clone();
        let last_payload_byte = bytes.len() - 9; // before the final crc
        b[last_payload_byte] ^= 0x10;
        assert_eq!(
            Checkpoint::decode(&b),
            Err(CheckpointError::ChecksumMismatch("batches"))
        );
        // And in the header's length fields.
        let mut b = bytes.clone();
        b[6] ^= 0x01; // vts_len
        assert_eq!(
            Checkpoint::decode(&b),
            Err(CheckpointError::ChecksumMismatch("header"))
        );
    }
}
