//! Property tests for the fixed-bucket latency histogram.

use proptest::prelude::*;
use wukong_obs::histogram::{bucket_index, bucket_upper_bound, BUCKETS};
use wukong_obs::LatencyHistogram;

proptest! {
    /// Recording any `u64` never panics, lands in a valid bucket whose
    /// bounds bracket the value, and keeps count/sum coherent.
    #[test]
    fn record_any_u64_never_panics(values in proptest::collection::vec(0..u64::MAX, 1..200)) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
            let idx = bucket_index(v);
            prop_assert!(idx < BUCKETS);
            // The bucket's inclusive upper bound is at or above the value
            // and the previous bucket's bound (if any) is below it.
            prop_assert!(bucket_upper_bound(idx) >= v);
            if idx > 0 {
                prop_assert!(bucket_upper_bound(idx - 1) < v);
            }
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let expect: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(h.sum(), expect);
    }

    /// `percentile` is monotone in `p`: a higher rank can never report a
    /// lower latency.
    #[test]
    fn percentile_monotone_in_p(values in proptest::collection::vec(0..u64::MAX, 1..200)) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0u64;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let q = h.percentile(p).expect("non-empty");
            prop_assert!(q >= last, "percentile({}) = {} < {}", p, q, last);
            last = q;
        }
    }

    /// `merge` preserves per-bucket counts exactly: the merged histogram
    /// holds the bucket-wise sum of its inputs.
    #[test]
    fn merge_preserves_bucket_counts(
        a in proptest::collection::vec(0..u64::MAX, 0..100),
        b in proptest::collection::vec(0..u64::MAX, 0..100),
    ) {
        let ha = LatencyHistogram::new();
        let hb = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let before_a = ha.snapshot();
        let before_b = hb.snapshot();
        ha.merge(&hb);
        let merged = ha.snapshot();
        for i in 0..BUCKETS {
            prop_assert_eq!(merged.buckets[i], before_a.buckets[i] + before_b.buckets[i]);
        }
        prop_assert_eq!(merged.count, before_a.count + before_b.count);
    }

    /// A snapshot delta over a live histogram is non-negative in every
    /// bucket and counts exactly the samples recorded in between.
    #[test]
    fn delta_non_negative_per_bucket(
        first in proptest::collection::vec(0..u64::MAX, 0..100),
        second in proptest::collection::vec(0..u64::MAX, 0..100),
    ) {
        let h = LatencyHistogram::new();
        for &v in &first {
            h.record(v);
        }
        let s1 = h.snapshot();
        for &v in &second {
            h.record(v);
        }
        let s2 = h.snapshot();
        let d = s1.delta(&s2);
        let mut total = 0u64;
        for &c in d.buckets.iter() {
            total += c;
        }
        prop_assert_eq!(total, second.len() as u64);
        prop_assert_eq!(d.count, second.len() as u64);
        // Reversed order must saturate to zero, not wrap: every bucket of
        // `s2` is >= the matching bucket of `s1`.
        let rev = s2.delta(&s1);
        for &c in rev.buckets.iter() {
            prop_assert_eq!(c, 0);
        }
        prop_assert_eq!(rev.count, 0);
    }
}
