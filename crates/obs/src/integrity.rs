//! State-integrity counters.
//!
//! The checksum-verification sites (batch seal → dispatch → install),
//! the invariant scrubber, and the quarantine/rebuild path all record
//! into one shared [`IntegrityCounters`] so a single snapshot answers
//! "was any corruption detected, where, and what did recovery cost".
//! Counters follow the same monotonic snapshot/delta discipline as
//! [`FaultCounters`](crate::FaultCounters).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of detected corruption and its repair.
#[derive(Debug, Default)]
pub struct IntegrityCounters {
    checksum_fail_batch: AtomicU64,
    checksum_fail_message: AtomicU64,
    checksum_fail_checkpoint: AtomicU64,
    scrub_violations: AtomicU64,
    quarantines: AtomicU64,
    rebuilds: AtomicU64,
    rebuild_ns: AtomicU64,
}

macro_rules! bump {
    ($($(#[$doc:meta])* $fn_name:ident => $field:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $fn_name(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl IntegrityCounters {
    bump! {
        /// A sealed batch failed checksum verification at the engine boundary.
        inc_checksum_fail_batch => checksum_fail_batch,
        /// A dispatched sub-batch failed checksum verification at store install.
        inc_checksum_fail_message => checksum_fail_message,
        /// A checkpoint section failed checksum verification during decode.
        inc_checksum_fail_checkpoint => checksum_fail_checkpoint,
        /// The invariant scrubber found a violated engine invariant.
        inc_scrub_violation => scrub_violations,
        /// A shard transitioned into the Quarantined state.
        inc_quarantine => quarantines,
        /// A quarantined shard was rebuilt from checkpoint + log replay.
        inc_rebuild => rebuilds,
    }

    /// Adds `n` scrubber violations at once.
    pub fn add_scrub_violations(&self, n: u64) {
        self.scrub_violations.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `ns` nanoseconds of quarantine-rebuild work.
    pub fn add_rebuild_ns(&self, ns: u64) {
        self.rebuild_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> IntegritySnapshot {
        IntegritySnapshot {
            checksum_fail_batch: self.checksum_fail_batch.load(Ordering::Relaxed),
            checksum_fail_message: self.checksum_fail_message.load(Ordering::Relaxed),
            checksum_fail_checkpoint: self.checksum_fail_checkpoint.load(Ordering::Relaxed),
            scrub_violations: self.scrub_violations.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            rebuild_ns: self.rebuild_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IntegrityCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegritySnapshot {
    /// Sealed batches rejected at the engine boundary (site: batch).
    pub checksum_fail_batch: u64,
    /// Sub-batches rejected at store install (site: message).
    pub checksum_fail_message: u64,
    /// Checkpoint sections rejected during decode (site: checkpoint).
    pub checksum_fail_checkpoint: u64,
    /// Violated engine invariants found by the scrubber.
    pub scrub_violations: u64,
    /// Shard transitions into the Quarantined state.
    pub quarantines: u64,
    /// Quarantined shards rebuilt from checkpoint + log replay.
    pub rebuilds: u64,
    /// Total nanoseconds spent in quarantine rebuilds.
    pub rebuild_ns: u64,
}

impl IntegritySnapshot {
    /// Total detected checksum failures across all sites.
    pub fn checksum_failures(&self) -> u64 {
        self.checksum_fail_batch + self.checksum_fail_message + self.checksum_fail_checkpoint
    }

    /// Difference of two snapshots (`later - self`).
    pub fn delta(&self, later: &IntegritySnapshot) -> IntegritySnapshot {
        IntegritySnapshot {
            checksum_fail_batch: later.checksum_fail_batch - self.checksum_fail_batch,
            checksum_fail_message: later.checksum_fail_message - self.checksum_fail_message,
            checksum_fail_checkpoint: later.checksum_fail_checkpoint
                - self.checksum_fail_checkpoint,
            scrub_violations: later.scrub_violations - self.scrub_violations,
            quarantines: later.quarantines - self.quarantines,
            rebuilds: later.rebuilds - self.rebuilds,
            rebuild_ns: later.rebuild_ns - self.rebuild_ns,
        }
    }

    /// `(name, value)` pairs in display order, for report writers.
    pub fn entries(&self) -> [(&'static str, u64); 7] {
        [
            ("checksum_fail_batch", self.checksum_fail_batch),
            ("checksum_fail_message", self.checksum_fail_message),
            ("checksum_fail_checkpoint", self.checksum_fail_checkpoint),
            ("scrub_violations", self.scrub_violations),
            ("quarantines", self.quarantines),
            ("rebuilds", self.rebuilds),
            ("rebuild_ns", self.rebuild_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let c = IntegrityCounters::default();
        c.inc_checksum_fail_batch();
        c.inc_checksum_fail_message();
        c.inc_checksum_fail_message();
        c.inc_quarantine();
        let before = c.snapshot();
        c.inc_checksum_fail_checkpoint();
        c.inc_rebuild();
        c.add_rebuild_ns(1_500);
        c.add_scrub_violations(2);
        let d = before.delta(&c.snapshot());
        assert_eq!(d.checksum_fail_checkpoint, 1);
        assert_eq!(d.rebuilds, 1);
        assert_eq!(d.rebuild_ns, 1_500);
        assert_eq!(d.scrub_violations, 2);
        assert_eq!(d.checksum_fail_message, 0);
        assert_eq!(before.checksum_fail_message, 2);
        assert_eq!(before.quarantines, 1);
        assert_eq!(c.snapshot().checksum_failures(), 4);
    }

    #[test]
    fn entries_cover_every_field() {
        let c = IntegrityCounters::default();
        c.inc_checksum_fail_batch();
        c.inc_checksum_fail_message();
        c.inc_checksum_fail_checkpoint();
        c.inc_scrub_violation();
        c.inc_quarantine();
        c.inc_rebuild();
        c.add_rebuild_ns(7);
        let s = c.snapshot();
        let names: std::collections::HashSet<_> = s.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 7);
        let sum: u64 = s.entries().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 13);
    }
}
