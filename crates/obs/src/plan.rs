//! Adaptive-planning counters.
//!
//! The adaptive layer's economics are "plans reused vs plans rebuilt"
//! and "estimate drift caught vs missed": the plan cache removes repeat
//! planning work from one-shot bursts, and the drift detector trades a
//! re-planning pause for cheaper firings afterwards. The engine records
//! every cache probe, feedback observation, re-plan, and execution-mode
//! decision here, plus the modeled work metric (`edges_traversed`) the
//! bench harness uses to compare plan quality deterministically. The
//! harness diffs snapshots around an experiment, like the fabric /
//! fault / pool / incremental / overload counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of adaptive-planning activity.
#[derive(Debug, Default)]
pub struct PlanCounters {
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    feedback_firings: AtomicU64,
    drifted_firings: AtomicU64,
    replans: AtomicU64,
    delta_rebuilds: AtomicU64,
    mode_inplace: AtomicU64,
    mode_forkjoin: AtomicU64,
    edges_traversed: AtomicU64,
}

impl PlanCounters {
    /// Records one plan-cache probe.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one firing observed by the drift detector; `drifted` says
    /// whether its fan-out left the tolerance band.
    pub fn record_feedback(&self, drifted: bool) {
        self.feedback_firings.fetch_add(1, Ordering::Relaxed);
        if drifted {
            self.drifted_firings.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one re-plan of a registered continuous query.
    pub fn record_replan(&self) {
        self.replans.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one maintained query's `DeltaState` invalidated across a
    /// plan switch (it rebuilds on the next firing).
    pub fn record_delta_rebuild(&self) {
        self.delta_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cost-model execution-mode decision.
    pub fn record_mode(&self, forkjoin: bool) {
        if forkjoin {
            self.mode_forkjoin.fetch_add(1, Ordering::Relaxed);
        } else {
            self.mode_inplace.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds `n` traversed index edges (a firing's per-step output-row
    /// total — the deterministic modeled-work metric).
    pub fn record_edges(&self, n: u64) {
        self.edges_traversed.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> PlanSnapshot {
        PlanSnapshot {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            feedback_firings: self.feedback_firings.load(Ordering::Relaxed),
            drifted_firings: self.drifted_firings.load(Ordering::Relaxed),
            replans: self.replans.load(Ordering::Relaxed),
            delta_rebuilds: self.delta_rebuilds.load(Ordering::Relaxed),
            mode_inplace: self.mode_inplace.load(Ordering::Relaxed),
            mode_forkjoin: self.mode_forkjoin.load(Ordering::Relaxed),
            edges_traversed: self.edges_traversed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`PlanCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanSnapshot {
    /// Plan-cache probes answered from the cache.
    pub cache_hits: u64,
    /// Plan-cache probes that had to plan from scratch.
    pub cache_misses: u64,
    /// Firings whose per-step fan-out fed the drift detector.
    pub feedback_firings: u64,
    /// Observed firings whose fan-out left the tolerance band.
    pub drifted_firings: u64,
    /// Re-plans of registered continuous queries (detector trips).
    pub replans: u64,
    /// Maintained-query delta states invalidated by a plan switch.
    pub delta_rebuilds: u64,
    /// Firings the cost model ran in place.
    pub mode_inplace: u64,
    /// Firings the cost model fanned out across partitions.
    pub mode_forkjoin: u64,
    /// Index edges traversed (sum of per-step output rows) across
    /// recompute firings — the modeled plan-quality metric.
    pub edges_traversed: u64,
}

impl PlanSnapshot {
    /// Difference of two snapshots (`later - self`).
    pub fn delta(&self, later: &PlanSnapshot) -> PlanSnapshot {
        PlanSnapshot {
            cache_hits: later.cache_hits - self.cache_hits,
            cache_misses: later.cache_misses - self.cache_misses,
            feedback_firings: later.feedback_firings - self.feedback_firings,
            drifted_firings: later.drifted_firings - self.drifted_firings,
            replans: later.replans - self.replans,
            delta_rebuilds: later.delta_rebuilds - self.delta_rebuilds,
            mode_inplace: later.mode_inplace - self.mode_inplace,
            mode_forkjoin: later.mode_forkjoin - self.mode_forkjoin,
            edges_traversed: later.edges_traversed - self.edges_traversed,
        }
    }

    /// `(name, value)` pairs in display order, for report writers.
    pub fn entries(&self) -> [(&'static str, u64); 9] {
        [
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("feedback_firings", self.feedback_firings),
            ("drifted_firings", self.drifted_firings),
            ("replans", self.replans),
            ("delta_rebuilds", self.delta_rebuilds),
            ("mode_inplace", self.mode_inplace),
            ("mode_forkjoin", self.mode_forkjoin),
            ("edges_traversed", self.edges_traversed),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let c = PlanCounters::default();
        c.record_cache(false);
        c.record_replan();
        let before = c.snapshot();
        c.record_cache(true);
        c.record_cache(true);
        c.record_feedback(false);
        c.record_feedback(true);
        c.record_mode(false);
        c.record_mode(true);
        c.record_delta_rebuild();
        c.record_edges(40);
        c.record_edges(2);
        let d = before.delta(&c.snapshot());
        assert_eq!(d.cache_hits, 2);
        assert_eq!(d.cache_misses, 0);
        assert_eq!(d.feedback_firings, 2);
        assert_eq!(d.drifted_firings, 1);
        assert_eq!(d.replans, 0);
        assert_eq!(d.delta_rebuilds, 1);
        assert_eq!(d.mode_inplace, 1);
        assert_eq!(d.mode_forkjoin, 1);
        assert_eq!(d.edges_traversed, 42);
        assert_eq!(before.cache_misses, 1);
        assert_eq!(before.replans, 1);
    }

    #[test]
    fn entries_cover_every_field() {
        let c = PlanCounters::default();
        c.record_replan();
        let snap = c.snapshot();
        let names: Vec<_> = snap.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 9);
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert!(names.contains(&"replans"));
        assert!(names.contains(&"edges_traversed"));
        assert_eq!(snap.entries()[4], ("replans", 1));
    }
}
