//! The stage taxonomy for traced work.
//!
//! Two families of stages exist, matching the two latency-critical paths
//! of the engine (§3/§4 of the paper):
//!
//! * **Query stages** cover one continuous-query firing end to end.
//!   `WindowExtract` (resolving window instances into a query context
//!   and picking a plan), `PatternMatch` (the executor's step loop,
//!   union, NOT-EXISTS, OPTIONAL), and `ResultEmit` (projection /
//!   construction of the result set) partition the firing — their sum
//!   accounts for the end-to-end latency. `ForkJoinFanout` and
//!   `ForkJoinMerge` are *attribution-only* sub-spans inside
//!   `PatternMatch` (how much of the matching time was spent fanning
//!   work out to remote partitions vs. merging it back); they overlap
//!   `PatternMatch` and are excluded from the sum. `Replan` covers the
//!   adaptive layer re-deriving a registered query's plan after the
//!   drift detector trips; it rides the query family but happens
//!   *between* firings, so like the fork-join sub-spans it is excluded
//!   from the end-to-end sum.
//! * **Batch stages** cover one ingest batch: `Adaptor` (windowing /
//!   sealing in the stream adaptor), `Dispatch` (sharding the batch
//!   across nodes), `Injection` (writing tuples into per-node transient
//!   stores), `StreamIndex` (appending to the stream index), and `Gc`
//!   (expiring dead batches). `Recovery` covers one checkpoint-and-log
//!   replay after an injected crash (§5); it rides the batch family
//!   because replay re-runs the ingest pipeline. `Shed` covers the
//!   overload manager dropping tuples from a full ingest queue and
//!   `CatchUp` covers re-inserting the shed suffix once overload
//!   subsides; both ride the batch family for the same reason.

/// One stage of a traced execution. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    // Query stages (one continuous-query firing).
    WindowExtract,
    PatternMatch,
    ForkJoinFanout,
    ForkJoinMerge,
    DeltaApply,
    StateRetract,
    ResultEmit,
    Replan,
    // Batch stages (one ingest batch).
    Adaptor,
    Dispatch,
    Injection,
    StreamIndex,
    Gc,
    Recovery,
    Shed,
    CatchUp,
}

impl Stage {
    /// Every stage, in display order.
    pub const ALL: [Stage; 16] = [
        Stage::WindowExtract,
        Stage::PatternMatch,
        Stage::ForkJoinFanout,
        Stage::ForkJoinMerge,
        Stage::DeltaApply,
        Stage::StateRetract,
        Stage::ResultEmit,
        Stage::Replan,
        Stage::Adaptor,
        Stage::Dispatch,
        Stage::Injection,
        Stage::StreamIndex,
        Stage::Gc,
        Stage::Recovery,
        Stage::Shed,
        Stage::CatchUp,
    ];

    /// The stage's position in [`Stage::ALL`] — the compact `u8` code
    /// flight-recorder events carry (see `crate::trace`).
    pub fn index(self) -> u8 {
        Stage::ALL.iter().position(|s| *s == self).unwrap() as u8
    }

    /// Decodes a [`Stage::index`] code.
    pub fn from_index(i: u8) -> Option<Stage> {
        Stage::ALL.get(i as usize).copied()
    }

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::WindowExtract => "window_extract",
            Stage::PatternMatch => "pattern_match",
            Stage::ForkJoinFanout => "forkjoin_fanout",
            Stage::ForkJoinMerge => "forkjoin_merge",
            Stage::DeltaApply => "delta_apply",
            Stage::StateRetract => "state_retract",
            Stage::ResultEmit => "result_emit",
            Stage::Replan => "replan",
            Stage::Adaptor => "adaptor",
            Stage::Dispatch => "dispatch",
            Stage::Injection => "injection",
            Stage::StreamIndex => "stream_index",
            Stage::Gc => "gc",
            Stage::Recovery => "recovery",
            Stage::Shed => "shed",
            Stage::CatchUp => "catch_up",
        }
    }

    /// Whether this stage belongs to the continuous-query firing path.
    pub fn is_query_stage(self) -> bool {
        matches!(
            self,
            Stage::WindowExtract
                | Stage::PatternMatch
                | Stage::ForkJoinFanout
                | Stage::ForkJoinMerge
                | Stage::DeltaApply
                | Stage::StateRetract
                | Stage::ResultEmit
                | Stage::Replan
        )
    }

    /// Whether this stage belongs to the batch-ingest path.
    pub fn is_batch_stage(self) -> bool {
        !self.is_query_stage()
    }

    /// Whether the stage is one of the disjoint spans whose sum accounts
    /// for a firing's end-to-end latency (fork-join sub-spans overlap
    /// `PatternMatch`, and `Replan` happens between firings, so they are
    /// excluded). Incremental firings report `StateRetract`/`DeltaApply`
    /// *instead of* `PatternMatch`, so both families are disjoint
    /// partitions of a firing and both count.
    pub fn counts_toward_query_total(self) -> bool {
        matches!(
            self,
            Stage::WindowExtract
                | Stage::PatternMatch
                | Stage::DeltaApply
                | Stage::StateRetract
                | Stage::ResultEmit
        )
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-execution stage accumulator: a small inline vector of
/// `(stage, nanoseconds)` entries, cheap enough to thread through hot
/// paths. Durations for the same stage accumulate.
#[derive(Debug, Default, Clone)]
pub struct StageTrace {
    spans: Vec<(Stage, u64)>,
}

impl StageTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` to `stage`'s span.
    pub fn add(&mut self, stage: Stage, ns: u64) {
        if let Some(entry) = self.spans.iter_mut().find(|(s, _)| *s == stage) {
            entry.1 += ns;
        } else {
            self.spans.push((stage, ns));
        }
    }

    /// Nanoseconds attributed to `stage` so far.
    pub fn get(&self, stage: Stage) -> u64 {
        self.spans
            .iter()
            .find(|(s, _)| *s == stage)
            .map_or(0, |(_, ns)| *ns)
    }

    /// All recorded `(stage, ns)` spans in insertion order.
    pub fn spans(&self) -> &[(Stage, u64)] {
        &self.spans
    }

    /// Sum of the disjoint query spans (see
    /// [`Stage::counts_toward_query_total`]); should account for the
    /// firing's end-to-end latency.
    pub fn query_total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|(s, _)| s.counts_toward_query_total())
            .map(|(_, ns)| ns)
            .sum()
    }

    /// Folds another trace into this one.
    pub fn merge(&mut self, other: &StageTrace) {
        for &(stage, ns) in other.spans() {
            self.add(stage, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: std::collections::HashSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Stage::ALL.len());
        assert_eq!(Stage::WindowExtract.name(), "window_extract");
    }

    #[test]
    fn index_codes_round_trip() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index() as usize, i);
            assert_eq!(Stage::from_index(s.index()), Some(*s));
        }
        assert_eq!(Stage::from_index(Stage::ALL.len() as u8), None);
    }

    #[test]
    fn query_and_batch_partition_the_taxonomy() {
        for s in Stage::ALL {
            assert_ne!(s.is_query_stage(), s.is_batch_stage());
        }
    }

    #[test]
    fn trace_accumulates_and_sums() {
        let mut t = StageTrace::new();
        t.add(Stage::PatternMatch, 100);
        t.add(Stage::PatternMatch, 50);
        t.add(Stage::ForkJoinFanout, 40);
        t.add(Stage::WindowExtract, 10);
        t.add(Stage::ResultEmit, 5);
        assert_eq!(t.get(Stage::PatternMatch), 150);
        // Fork-join sub-spans overlap PatternMatch: excluded from total.
        assert_eq!(t.query_total_ns(), 165);
        let mut u = StageTrace::new();
        u.merge(&t);
        u.merge(&t);
        assert_eq!(u.get(Stage::PatternMatch), 300);
    }

    #[test]
    fn incremental_stages_partition_a_firing() {
        // An incremental firing reports StateRetract + DeltaApply in
        // place of PatternMatch; the three disjoint spans plus
        // WindowExtract/ResultEmit must sum like the recompute family.
        for s in [Stage::DeltaApply, Stage::StateRetract] {
            assert!(s.is_query_stage());
            assert!(s.counts_toward_query_total());
        }
        let mut t = StageTrace::new();
        t.add(Stage::WindowExtract, 10);
        t.add(Stage::StateRetract, 20);
        t.add(Stage::DeltaApply, 100);
        t.add(Stage::ResultEmit, 5);
        assert_eq!(t.query_total_ns(), 135);
    }

    #[test]
    fn replan_is_a_query_stage_outside_the_firing_total() {
        // Re-planning happens between firings: it must show up in the
        // query family's breakdown without inflating the sum that
        // accounts for any single firing's end-to-end latency.
        assert!(Stage::Replan.is_query_stage());
        assert!(!Stage::Replan.counts_toward_query_total());
        let mut t = StageTrace::new();
        t.add(Stage::PatternMatch, 100);
        t.add(Stage::Replan, 1_000);
        assert_eq!(t.query_total_ns(), 100);
    }
}
