//! Engine-wide observability: staged latency tracing, fixed-bucket
//! log-scale histograms, and a machine-readable (JSON) report format.
//!
//! The paper's headline claim is *sub-millisecond* continuous-query
//! latency; verifying it (and diagnosing regressions against it) needs
//! more than an end-to-end number. This crate provides the three pieces
//! the engine and the benchmark harness share:
//!
//! * [`LatencyHistogram`] — a fixed-size log-scale histogram (496
//!   buckets, ≤ 1/8 relative error) covering the full `u64` nanosecond
//!   range, with lock-free recording, `merge`, and snapshot/delta.
//! * [`Stage`] / [`StageTrace`] — the stage taxonomy for one continuous
//!   query firing (window extraction → pattern matching → emit) and one
//!   ingest batch (adaptor → dispatch → injection → stream index → GC),
//!   plus a cheap per-execution accumulator.
//! * [`Registry`] — the engine-owned sink keyed by query class and
//!   stream, snapshottable for reports.
//!
//! The [`json`] module is a dependency-free JSON value type with a
//! serializer and parser, used by the bench binaries' `--json` mode.
//! The [`faults`] module adds monotonic counters for injected faults and
//! the engine's reactions (drops, retries, timeouts, recoveries).

pub mod faults;
pub mod histogram;
pub mod incremental;
pub mod integrity;
pub mod json;
pub mod overload;
pub mod plan;
pub mod pool;
pub mod registry;
pub mod stage;
pub mod trace;

pub use faults::{FaultCounters, FaultSnapshot};
pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use incremental::{IncrementalCounters, IncrementalSnapshot};
pub use integrity::{IntegrityCounters, IntegritySnapshot};
pub use json::Json;
pub use overload::{OverloadCounters, OverloadSnapshot};
pub use plan::{PlanCounters, PlanSnapshot};
pub use pool::{PoolCounters, PoolSnapshot};
pub use registry::{Registry, RegistrySnapshot, SeriesSnapshot};
pub use stage::{Stage, StageTrace};
pub use trace::{
    BatchId, FiringId, FiringMeta, Marker, SpanGuard, TraceEvent, TraceRecorder, TraceSnapshot,
};
