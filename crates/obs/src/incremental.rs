//! Delta-maintenance counters.
//!
//! The incremental execution mode's economics are "rows reused vs rows
//! recomputed": a high reuse ratio is what turns window overlap into
//! latency savings. The engine records every continuous-query firing
//! here — which path it took (incremental, full rebuild, or recompute
//! fallback) and how many state rows each maintained firing carried
//! over, re-derived, and retracted. The bench harness diffs snapshots
//! around an experiment, like the fabric / fault / pool counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of incremental-execution activity.
#[derive(Debug, Default)]
pub struct IncrementalCounters {
    incremental_firings: AtomicU64,
    rebuild_firings: AtomicU64,
    fallback_firings: AtomicU64,
    rows_reused: AtomicU64,
    rows_recomputed: AtomicU64,
    rows_retracted: AtomicU64,
}

impl IncrementalCounters {
    /// Records one maintained firing: `rebuilt` says whether state was
    /// rebuilt from scratch, the row counts say what the maintenance did.
    pub fn record_maintained(&self, rebuilt: bool, reused: u64, recomputed: u64, retracted: u64) {
        if rebuilt {
            self.rebuild_firings.fetch_add(1, Ordering::Relaxed);
        } else {
            self.incremental_firings.fetch_add(1, Ordering::Relaxed);
        }
        self.rows_reused.fetch_add(reused, Ordering::Relaxed);
        self.rows_recomputed
            .fetch_add(recomputed, Ordering::Relaxed);
        self.rows_retracted.fetch_add(retracted, Ordering::Relaxed);
    }

    /// Records one firing that fell back to full recompute (mode off,
    /// non-incrementalizable plan, or fault plan active).
    pub fn record_fallback(&self) {
        self.fallback_firings.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> IncrementalSnapshot {
        IncrementalSnapshot {
            incremental_firings: self.incremental_firings.load(Ordering::Relaxed),
            rebuild_firings: self.rebuild_firings.load(Ordering::Relaxed),
            fallback_firings: self.fallback_firings.load(Ordering::Relaxed),
            rows_reused: self.rows_reused.load(Ordering::Relaxed),
            rows_recomputed: self.rows_recomputed.load(Ordering::Relaxed),
            rows_retracted: self.rows_retracted.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IncrementalCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalSnapshot {
    /// Firings maintained by delta application over retained state.
    pub incremental_firings: u64,
    /// Firings that rebuilt state from scratch (first firing of a query,
    /// post-recovery, or non-monotone window movement).
    pub rebuild_firings: u64,
    /// Firings that ran the full recompute path instead.
    pub fallback_firings: u64,
    /// State rows carried over across maintained firings.
    pub rows_reused: u64,
    /// Rows newly derived by delta application or rebuild.
    pub rows_recomputed: u64,
    /// State rows dropped because a contributing edge expired.
    pub rows_retracted: u64,
}

impl IncrementalSnapshot {
    /// Difference of two snapshots (`later - self`).
    pub fn delta(&self, later: &IncrementalSnapshot) -> IncrementalSnapshot {
        IncrementalSnapshot {
            incremental_firings: later.incremental_firings - self.incremental_firings,
            rebuild_firings: later.rebuild_firings - self.rebuild_firings,
            fallback_firings: later.fallback_firings - self.fallback_firings,
            rows_reused: later.rows_reused - self.rows_reused,
            rows_recomputed: later.rows_recomputed - self.rows_recomputed,
            rows_retracted: later.rows_retracted - self.rows_retracted,
        }
    }

    /// `(name, value)` pairs in display order, for report writers.
    pub fn entries(&self) -> [(&'static str, u64); 6] {
        [
            ("incremental_firings", self.incremental_firings),
            ("rebuild_firings", self.rebuild_firings),
            ("fallback_firings", self.fallback_firings),
            ("rows_reused", self.rows_reused),
            ("rows_recomputed", self.rows_recomputed),
            ("rows_retracted", self.rows_retracted),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintained_and_fallback_accumulate_and_delta() {
        let c = IncrementalCounters::default();
        c.record_maintained(true, 0, 10, 0);
        c.record_fallback();
        let before = c.snapshot();
        c.record_maintained(false, 8, 3, 2);
        c.record_maintained(false, 9, 1, 0);
        let d = before.delta(&c.snapshot());
        assert_eq!(d.incremental_firings, 2);
        assert_eq!(d.rebuild_firings, 0);
        assert_eq!(d.fallback_firings, 0);
        assert_eq!(d.rows_reused, 17);
        assert_eq!(d.rows_recomputed, 4);
        assert_eq!(d.rows_retracted, 2);
        assert_eq!(before.rebuild_firings, 1);
        assert_eq!(before.fallback_firings, 1);
    }

    #[test]
    fn entries_cover_every_field() {
        let c = IncrementalCounters::default();
        c.record_maintained(false, 5, 2, 1);
        let names: Vec<_> = c.snapshot().entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 6);
        assert!(names.contains(&"rows_reused"));
        assert!(names.contains(&"rows_recomputed"));
        assert!(names.contains(&"fallback_firings"));
    }
}
