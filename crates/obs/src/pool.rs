//! Worker-pool counters.
//!
//! Every parallel region the engine runs on a node's worker pool records
//! here: how many tasks it held, how work spread across lanes, and what
//! the region cost both serially and under the pool's deterministic
//! list-schedule cost model (see `wukong-net`'s `WorkerPool`). The bench
//! harness diffs snapshots around an experiment to report pool activity
//! the same way it reports fabric and fault counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of worker-pool activity.
#[derive(Debug, Default)]
pub struct PoolCounters {
    tasks: AtomicU64,
    regions: AtomicU64,
    steals: AtomicU64,
    max_queue_depth: AtomicU64,
    serial_busy_ns: AtomicU64,
    modeled_busy_ns: AtomicU64,
    region_wall_ns: AtomicU64,
}

impl PoolCounters {
    /// Records one finished parallel region: `tasks` executed, of which
    /// `steals` ran on a lane other than their round-robin home,
    /// `queue_depth` tasks were pending when the region started,
    /// `serial_ns` is the sum of per-task durations, `modeled_ns` the
    /// region's modeled parallel duration (the makespan of a list
    /// schedule over the pool's lanes), and `wall_ns` the region's
    /// actual elapsed time on the host (spawn overhead and core
    /// contention included).
    pub fn record_region(
        &self,
        tasks: u64,
        steals: u64,
        queue_depth: u64,
        serial_ns: u64,
        modeled_ns: u64,
        wall_ns: u64,
    ) {
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
        self.regions.fetch_add(1, Ordering::Relaxed);
        self.steals.fetch_add(steals, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(queue_depth, Ordering::Relaxed);
        self.serial_busy_ns.fetch_add(serial_ns, Ordering::Relaxed);
        self.modeled_busy_ns
            .fetch_add(modeled_ns, Ordering::Relaxed);
        self.region_wall_ns.fetch_add(wall_ns, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            tasks: self.tasks.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            serial_busy_ns: self.serial_busy_ns.load(Ordering::Relaxed),
            modeled_busy_ns: self.modeled_busy_ns.load(Ordering::Relaxed),
            region_wall_ns: self.region_wall_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`PoolCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    /// Tasks executed across all regions.
    pub tasks: u64,
    /// Parallel regions run (one per `WorkerPool::map` call).
    pub regions: u64,
    /// Tasks claimed by a lane other than their round-robin home.
    pub steals: u64,
    /// Deepest queue observed at the start of any region.
    pub max_queue_depth: u64,
    /// Sum of per-task durations (the serial cost of all regions).
    pub serial_busy_ns: u64,
    /// Sum of modeled parallel region durations (list-schedule makespan
    /// per region).
    pub modeled_busy_ns: u64,
    /// Sum of region wall-clock durations as the host actually ran them.
    pub region_wall_ns: u64,
}

impl PoolSnapshot {
    /// Difference of two snapshots (`later - self`). `max_queue_depth`
    /// is a high-water mark, not a sum, so the later value is kept.
    pub fn delta(&self, later: &PoolSnapshot) -> PoolSnapshot {
        PoolSnapshot {
            tasks: later.tasks - self.tasks,
            regions: later.regions - self.regions,
            steals: later.steals - self.steals,
            max_queue_depth: later.max_queue_depth,
            serial_busy_ns: later.serial_busy_ns - self.serial_busy_ns,
            modeled_busy_ns: later.modeled_busy_ns - self.modeled_busy_ns,
            region_wall_ns: later.region_wall_ns - self.region_wall_ns,
        }
    }

    /// `(name, value)` pairs in display order, for report writers.
    pub fn entries(&self) -> [(&'static str, u64); 7] {
        [
            ("tasks", self.tasks),
            ("regions", self.regions),
            ("steals", self.steals),
            ("max_queue_depth", self.max_queue_depth),
            ("serial_busy_ns", self.serial_busy_ns),
            ("modeled_busy_ns", self.modeled_busy_ns),
            ("region_wall_ns", self.region_wall_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_accumulate_and_delta() {
        let c = PoolCounters::default();
        c.record_region(4, 1, 4, 1_000, 400, 500);
        let before = c.snapshot();
        c.record_region(8, 3, 8, 2_000, 600, 700);
        let d = before.delta(&c.snapshot());
        assert_eq!(d.tasks, 8);
        assert_eq!(d.regions, 1);
        assert_eq!(d.steals, 3);
        assert_eq!(d.max_queue_depth, 8);
        assert_eq!(d.serial_busy_ns, 2_000);
        assert_eq!(d.modeled_busy_ns, 600);
        assert_eq!(d.region_wall_ns, 700);
        assert_eq!(before.tasks, 4);
    }

    #[test]
    fn queue_depth_is_a_high_water_mark() {
        let c = PoolCounters::default();
        c.record_region(8, 0, 8, 0, 0, 0);
        c.record_region(2, 0, 2, 0, 0, 0);
        assert_eq!(c.snapshot().max_queue_depth, 8);
    }

    #[test]
    fn entries_cover_every_field() {
        let c = PoolCounters::default();
        c.record_region(3, 1, 3, 30, 10, 40);
        let names: Vec<_> = c.snapshot().entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 7);
        assert!(names.contains(&"steals"));
        assert!(names.contains(&"modeled_busy_ns"));
        assert!(names.contains(&"region_wall_ns"));
    }
}
