//! The engine-owned metrics registry.
//!
//! One [`Registry`] lives in the cluster (shared `Arc`); the engine
//! records query-stage spans keyed by *query class* (the registered
//! query's name) and batch-stage spans keyed by *stream name*. Each keyed
//! series is a set of per-stage [`LatencyHistogram`]s plus an end-to-end
//! histogram for query series.
//!
//! Reads go through [`Registry::snapshot`]; two snapshots can be
//! subtracted ([`RegistrySnapshot::delta`]) to isolate one experiment's
//! interval, mirroring `FabricMetrics::snapshot().delta`.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::faults::FaultCounters;
use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::incremental::IncrementalCounters;
use crate::integrity::IntegrityCounters;
use crate::overload::OverloadCounters;
use crate::plan::PlanCounters;
use crate::pool::PoolCounters;
use crate::stage::{Stage, StageTrace};
use crate::trace::TraceRecorder;

/// Per-stage histograms for one keyed series, plus an end-to-end
/// histogram (used by query series; batch series leave it empty).
#[derive(Default)]
struct Series {
    stages: BTreeMap<Stage, LatencyHistogram>,
    end_to_end: LatencyHistogram,
}

/// The engine-wide sink for staged latency tracing.
#[derive(Default)]
pub struct Registry {
    queries: RwLock<BTreeMap<String, Arc<RwLock<Series>>>>,
    streams: RwLock<BTreeMap<String, Arc<RwLock<Series>>>>,
    faults: Arc<FaultCounters>,
    pool: Arc<PoolCounters>,
    incremental: Arc<IncrementalCounters>,
    overload: Arc<OverloadCounters>,
    plan: Arc<PlanCounters>,
    integrity: Arc<IntegrityCounters>,
    trace: Arc<TraceRecorder>,
}

fn series_for(
    map: &RwLock<BTreeMap<String, Arc<RwLock<Series>>>>,
    key: &str,
) -> Arc<RwLock<Series>> {
    if let Some(s) = map.read().get(key) {
        return Arc::clone(s);
    }
    Arc::clone(map.write().entry(key.to_string()).or_default())
}

fn record_into(series: &Arc<RwLock<Series>>, trace: &StageTrace) {
    // Fast path: all stages already have histograms (read lock only).
    {
        let s = series.read();
        if trace
            .spans()
            .iter()
            .all(|(stage, _)| s.stages.contains_key(stage))
        {
            for &(stage, ns) in trace.spans() {
                s.stages[&stage].record(ns);
            }
            return;
        }
    }
    let mut s = series.write();
    for &(stage, ns) in trace.spans() {
        s.stages.entry(stage).or_default().record(ns);
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished firing for query class `query`: its staged
    /// trace plus the end-to-end latency in nanoseconds.
    pub fn record_query(&self, query: &str, trace: &StageTrace, end_to_end_ns: u64) {
        let series = series_for(&self.queries, query);
        record_into(&series, trace);
        series.read().end_to_end.record(end_to_end_ns);
    }

    /// Records batch-path stage spans for stream `stream`.
    pub fn record_stream(&self, stream: &str, trace: &StageTrace) {
        record_into(&series_for(&self.streams, stream), trace);
    }

    /// Records a single batch stage span for stream `stream`.
    pub fn record_stream_stage(&self, stream: &str, stage: Stage, ns: u64) {
        let mut t = StageTrace::new();
        t.add(stage, ns);
        self.record_stream(stream, &t);
    }

    /// Records a single stage span for query class `query` *without*
    /// touching its end-to-end histogram — for between-firing work
    /// (re-planning) that must appear in the breakdown but is not part
    /// of any firing's latency.
    pub fn record_query_stage(&self, query: &str, stage: Stage, ns: u64) {
        let mut t = StageTrace::new();
        t.add(stage, ns);
        record_into(&series_for(&self.queries, query), &t);
    }

    /// The shared fault/recovery counters; the fault-injection fabric
    /// and the recovery path both record here.
    pub fn faults(&self) -> &Arc<FaultCounters> {
        &self.faults
    }

    /// The shared worker-pool counters; every node's `WorkerPool`
    /// records its parallel regions here.
    pub fn pool(&self) -> &Arc<PoolCounters> {
        &self.pool
    }

    /// The shared delta-maintenance counters; the engine's `fire_ready`
    /// records every continuous firing's path (maintained vs fallback)
    /// and row reuse here.
    pub fn incremental(&self) -> &Arc<IncrementalCounters> {
        &self.incremental
    }

    /// The shared overload-management counters; the engine's bounded
    /// ingest, admission control, and catch-up replay record here.
    pub fn overload(&self) -> &Arc<OverloadCounters> {
        &self.overload
    }

    /// The shared adaptive-planning counters; the engine's plan cache,
    /// drift detector, and cost-model mode selection record here.
    pub fn plan(&self) -> &Arc<PlanCounters> {
        &self.plan
    }

    /// The shared state-integrity counters; the checksum-verification
    /// sites, the invariant scrubber, and the quarantine-rebuild path
    /// record here.
    pub fn integrity(&self) -> &Arc<IntegrityCounters> {
        &self.integrity
    }

    /// The shared flight recorder (`crate::trace`); the engine's batch
    /// and firing paths emit causal span/marker events here, and
    /// anomaly sites trigger black-box dumps through it.
    pub fn trace(&self) -> &Arc<TraceRecorder> {
        &self.trace
    }

    /// Point-in-time copy of every keyed series.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let copy = |map: &RwLock<BTreeMap<String, Arc<RwLock<Series>>>>| {
            map.read()
                .iter()
                .map(|(k, v)| {
                    let s = v.read();
                    (
                        k.clone(),
                        SeriesSnapshot {
                            stages: s.stages.iter().map(|(st, h)| (*st, h.snapshot())).collect(),
                            end_to_end: s.end_to_end.snapshot(),
                        },
                    )
                })
                .collect()
        };
        RegistrySnapshot {
            queries: copy(&self.queries),
            streams: copy(&self.streams),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Registry")
            .field("queries", &snap.queries.len())
            .field("streams", &snap.streams.len())
            .finish()
    }
}

/// Plain-data copy of one series.
#[derive(Debug, Clone, Default)]
pub struct SeriesSnapshot {
    /// Per-stage histogram snapshots.
    pub stages: BTreeMap<Stage, HistogramSnapshot>,
    /// End-to-end latency histogram (query series only).
    pub end_to_end: HistogramSnapshot,
}

impl SeriesSnapshot {
    fn delta(&self, later: &SeriesSnapshot) -> SeriesSnapshot {
        let empty = HistogramSnapshot::default();
        SeriesSnapshot {
            stages: later
                .stages
                .iter()
                .map(|(st, h)| (*st, self.stages.get(st).unwrap_or(&empty).delta(h)))
                .collect(),
            end_to_end: self.end_to_end.delta(&later.end_to_end),
        }
    }
}

/// Plain-data copy of the whole registry at one instant.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Per-query-class series, keyed by registered query name.
    pub queries: BTreeMap<String, SeriesSnapshot>,
    /// Per-stream series, keyed by stream name.
    pub streams: BTreeMap<String, SeriesSnapshot>,
}

impl RegistrySnapshot {
    /// Activity between `self` (earlier) and `later`: per-bucket
    /// saturating subtraction, keeping every key present in `later`.
    pub fn delta(&self, later: &RegistrySnapshot) -> RegistrySnapshot {
        let empty = SeriesSnapshot::default();
        let diff = |ours: &BTreeMap<String, SeriesSnapshot>,
                    theirs: &BTreeMap<String, SeriesSnapshot>| {
            theirs
                .iter()
                .map(|(k, v)| (k.clone(), ours.get(k).unwrap_or(&empty).delta(v)))
                .collect()
        };
        RegistrySnapshot {
            queries: diff(&self.queries, &later.queries),
            streams: diff(&self.streams, &later.streams),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_series_accumulate_by_key() {
        let r = Registry::new();
        let mut t = StageTrace::new();
        t.add(Stage::WindowExtract, 10);
        t.add(Stage::PatternMatch, 100);
        t.add(Stage::ResultEmit, 5);
        r.record_query("q4", &t, 115);
        r.record_query("q4", &t, 115);
        r.record_query("q7", &t, 115);
        let snap = r.snapshot();
        assert_eq!(snap.queries.len(), 2);
        let q4 = &snap.queries["q4"];
        assert_eq!(q4.end_to_end.count, 2);
        assert_eq!(q4.stages[&Stage::PatternMatch].count, 2);
        assert_eq!(snap.queries["q7"].end_to_end.count, 1);
    }

    #[test]
    fn stream_series_and_delta() {
        let r = Registry::new();
        r.record_stream_stage("lsbench-posts", Stage::Injection, 1_000);
        let before = r.snapshot();
        r.record_stream_stage("lsbench-posts", Stage::Injection, 2_000);
        r.record_stream_stage("lsbench-posts", Stage::Gc, 500);
        let after = r.snapshot();
        let d = before.delta(&after);
        let s = &d.streams["lsbench-posts"];
        assert_eq!(s.stages[&Stage::Injection].count, 1);
        assert_eq!(s.stages[&Stage::Gc].count, 1);
    }
}
