//! Fixed-bucket log-scale latency histogram.
//!
//! Layout (HdrHistogram-style, 3 significant bits of precision): values
//! below 8 get exact unit buckets; above that, each octave `[2^k, 2^(k+1))`
//! is split into 8 sub-buckets, so any recorded value lands in a bucket
//! whose width is at most 1/8 of the value. That bounds the relative
//! error of [`LatencyHistogram::percentile`] by the bucket width — the
//! reported value is the bucket's inclusive upper bound, never more than
//! 12.5 % above the true sample.
//!
//! 62 octaves × 8 sub-buckets + the 8 unit buckets = 496 buckets, which
//! covers the entire `u64` range in nanoseconds (from 1 ns to ~584 years)
//! in 496 × 8 bytes = ~4 KiB of atomics. Recording is a single relaxed
//! `fetch_add`, safe from any thread without locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 8 unit buckets + 61 octaves × 8 sub-buckets.
/// Octave index for the top bit 63 is `(63 - 3 + 1) = 61`, so the
/// highest bucket index is `61 * 8 + 7 = 495`.
pub const BUCKETS: usize = 496;

/// Returns the bucket index for a value. Exact below 8; log-scale with
/// 8 sub-buckets per octave above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= 3
        let exp = msb - 3;
        ((exp + 1) * 8 + ((v >> exp) - 8)) as usize
    }
}

/// Inclusive upper bound of bucket `idx` (the value `percentile` reports).
#[inline]
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < 8 {
        idx as u64
    } else {
        let octave = (idx / 8) as u32; // >= 1
        let sub = (idx % 8) as u128;
        // First value of the *next* sub-bucket, minus one. Computed in
        // u128: for the very top bucket the next boundary is 2^64.
        let next = (8 + sub + 1) << (octave - 1);
        u64::try_from(next - 1).unwrap_or(u64::MAX)
    }
}

/// A concurrent fixed-bucket histogram of `u64` samples (nanoseconds by
/// convention, but unit-agnostic).
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; never panics for any `u64`.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a `std::time::Duration` as nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds another histogram's counts into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The `p`-quantile (`p` in `[0, 1]`) as the inclusive upper bound of
    /// the bucket holding the nearest-rank sample. `None` when empty.
    /// The reported value exceeds the true sample by at most one bucket
    /// width (≤ 12.5 % relative error).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper_bound(idx));
            }
        }
        // Only reachable if counts raced; report the top bucket.
        Some(bucket_upper_bound(BUCKETS - 1))
    }

    /// An owned point-in-time copy of the counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// An owned, plain-data copy of a histogram at one instant. Supports the
/// same queries as the live histogram plus interval arithmetic (`delta`).
#[derive(Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Counts accumulated between `self` (earlier) and `later`, per
    /// bucket. Saturating, so a reset histogram yields zeros rather than
    /// wrapping.
    pub fn delta(&self, later: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(later.buckets.iter()))
        {
            *out = b.saturating_sub(*a);
        }
        HistogramSnapshot {
            buckets,
            count: later.count.saturating_sub(self.count),
            sum: later.sum.saturating_sub(self.sum),
        }
    }

    /// Same nearest-rank upper-bound percentile as the live histogram.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(idx));
            }
        }
        Some(bucket_upper_bound(BUCKETS - 1))
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev, "index not monotone at v={v}");
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_bound_contains_value() {
        for shift in 0..64 {
            for off in [0u64, 1, 7, 100] {
                let v = (1u64 << shift).saturating_add(off);
                let ub = bucket_upper_bound(bucket_index(v));
                assert!(ub >= v, "v={v} ub={ub}");
            }
        }
    }

    #[test]
    fn percentile_error_bounded_by_bucket_width() {
        // Acceptance check: the reported percentile exceeds the true
        // sample by at most the bucket width, i.e. ≤ 1/8 of the value.
        let h = LatencyHistogram::new();
        let samples: Vec<u64> = (0..10_000u64).map(|i| i * i + 17).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let reported = h.percentile(p).unwrap();
            let rank = ((p * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let truth = sorted[rank];
            assert!(reported >= truth, "p={p}: {reported} < {truth}");
            let width = (truth / 8).max(1);
            assert!(
                reported <= truth + width,
                "p={p}: reported {reported} exceeds {truth} by more than a bucket width {width}"
            );
        }
    }

    #[test]
    fn merge_adds_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 100 + 100 + 1_000_000);
        assert_eq!(a.snapshot().buckets[bucket_index(100)], 2);
    }

    #[test]
    fn snapshot_delta() {
        let h = LatencyHistogram::new();
        h.record(50);
        let before = h.snapshot();
        h.record(50);
        h.record(5_000);
        let after = h.snapshot();
        let d = before.delta(&after);
        assert_eq!(d.count, 2);
        assert_eq!(d.buckets[bucket_index(50)], 1);
        assert_eq!(d.buckets[bucket_index(5_000)], 1);
        // Reversed order saturates instead of wrapping.
        assert_eq!(after.delta(&before).count, 0);
    }

    #[test]
    fn empty_percentile_is_none() {
        assert_eq!(LatencyHistogram::new().percentile(0.5), None);
        assert_eq!(HistogramSnapshot::default().percentile(0.5), None);
    }
}
