//! Overload-management counters.
//!
//! The overload subsystem (bounded ingest + deterministic shedding +
//! shed-then-catch-up recovery, in `wukong-core`/`wukong-stream`) records
//! into one shared [`OverloadCounters`] so a single snapshot answers
//! "how hard was the engine pushed and what did it give up" for an
//! experiment interval. Same monotonic snapshot/delta discipline as
//! [`crate::FaultCounters`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of load shedding, admission control, and catch-up.
#[derive(Debug, Default)]
pub struct OverloadCounters {
    sheds_drop_oldest: AtomicU64,
    sheds_sampled: AtomicU64,
    tuples_shed: AtomicU64,
    admission_rejected: AtomicU64,
    state_transitions: AtomicU64,
    catchup_replays: AtomicU64,
    catchup_replayed_tuples: AtomicU64,
    degraded_firings: AtomicU64,
    incremental_rebuilds: AtomicU64,
}

macro_rules! bump {
    ($($(#[$doc:meta])* $fn_name:ident => $field:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $fn_name(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl OverloadCounters {
    bump! {
        /// A full queue shed the oldest pending window's tuples.
        inc_shed_drop_oldest => sheds_drop_oldest,
        /// A full queue deterministically sampled tuples out of a batch.
        inc_shed_sampled => sheds_sampled,
        /// A one-shot query was rejected by admission control.
        inc_admission_rejected => admission_rejected,
        /// The degradation state machine changed state.
        inc_state_transition => state_transitions,
        /// A catch-up replay episode completed.
        inc_catchup_replay => catchup_replays,
        /// A firing carried a `degraded` staleness marker.
        inc_degraded_firing => degraded_firings,
        /// A shed gap forced an incremental query to rebuild its state.
        inc_incremental_rebuild => incremental_rebuilds,
    }

    /// Adds `n` shed tuples at once.
    pub fn add_tuples_shed(&self, n: u64) {
        self.tuples_shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` tuples re-inserted by a catch-up replay.
    pub fn add_replayed_tuples(&self, n: u64) {
        self.catchup_replayed_tuples.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> OverloadSnapshot {
        OverloadSnapshot {
            sheds_drop_oldest: self.sheds_drop_oldest.load(Ordering::Relaxed),
            sheds_sampled: self.sheds_sampled.load(Ordering::Relaxed),
            tuples_shed: self.tuples_shed.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            state_transitions: self.state_transitions.load(Ordering::Relaxed),
            catchup_replays: self.catchup_replays.load(Ordering::Relaxed),
            catchup_replayed_tuples: self.catchup_replayed_tuples.load(Ordering::Relaxed),
            degraded_firings: self.degraded_firings.load(Ordering::Relaxed),
            incremental_rebuilds: self.incremental_rebuilds.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`OverloadCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadSnapshot {
    /// Shed events under the drop-oldest-window policy.
    pub sheds_drop_oldest: u64,
    /// Shed events under the sample-within-batch policy.
    pub sheds_sampled: u64,
    /// Tuples dropped by the shed policy (before any catch-up replay).
    pub tuples_shed: u64,
    /// One-shot queries rejected by admission control.
    pub admission_rejected: u64,
    /// Degradation state-machine transitions.
    pub state_transitions: u64,
    /// Completed catch-up replay episodes.
    pub catchup_replays: u64,
    /// Tuples re-inserted by catch-up replays.
    pub catchup_replayed_tuples: u64,
    /// Firings that carried a `degraded` staleness marker.
    pub degraded_firings: u64,
    /// Incremental state rebuilds forced by a shed gap.
    pub incremental_rebuilds: u64,
}

impl OverloadSnapshot {
    /// Difference of two snapshots (`later - self`).
    pub fn delta(&self, later: &OverloadSnapshot) -> OverloadSnapshot {
        OverloadSnapshot {
            sheds_drop_oldest: later.sheds_drop_oldest - self.sheds_drop_oldest,
            sheds_sampled: later.sheds_sampled - self.sheds_sampled,
            tuples_shed: later.tuples_shed - self.tuples_shed,
            admission_rejected: later.admission_rejected - self.admission_rejected,
            state_transitions: later.state_transitions - self.state_transitions,
            catchup_replays: later.catchup_replays - self.catchup_replays,
            catchup_replayed_tuples: later.catchup_replayed_tuples - self.catchup_replayed_tuples,
            degraded_firings: later.degraded_firings - self.degraded_firings,
            incremental_rebuilds: later.incremental_rebuilds - self.incremental_rebuilds,
        }
    }

    /// `(name, value)` pairs in display order, for report writers.
    pub fn entries(&self) -> [(&'static str, u64); 9] {
        [
            ("sheds_drop_oldest", self.sheds_drop_oldest),
            ("sheds_sampled", self.sheds_sampled),
            ("tuples_shed", self.tuples_shed),
            ("admission_rejected", self.admission_rejected),
            ("state_transitions", self.state_transitions),
            ("catchup_replays", self.catchup_replays),
            ("catchup_replayed_tuples", self.catchup_replayed_tuples),
            ("degraded_firings", self.degraded_firings),
            ("incremental_rebuilds", self.incremental_rebuilds),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let c = OverloadCounters::default();
        c.inc_shed_drop_oldest();
        c.add_tuples_shed(40);
        c.inc_state_transition();
        let before = c.snapshot();
        c.inc_shed_sampled();
        c.add_tuples_shed(10);
        c.inc_catchup_replay();
        c.add_replayed_tuples(50);
        let d = before.delta(&c.snapshot());
        assert_eq!(d.sheds_drop_oldest, 0);
        assert_eq!(d.sheds_sampled, 1);
        assert_eq!(d.tuples_shed, 10);
        assert_eq!(d.catchup_replayed_tuples, 50);
        assert_eq!(before.tuples_shed, 40);
    }

    #[test]
    fn entries_cover_every_field() {
        let c = OverloadCounters::default();
        c.inc_shed_drop_oldest();
        c.inc_shed_sampled();
        c.add_tuples_shed(1);
        c.inc_admission_rejected();
        c.inc_state_transition();
        c.inc_catchup_replay();
        c.add_replayed_tuples(1);
        c.inc_degraded_firing();
        c.inc_incremental_rebuild();
        let s = c.snapshot();
        let names: std::collections::HashSet<_> = s.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 9);
        let total: u64 = s.entries().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 9);
    }
}
