//! Fault and recovery counters.
//!
//! The fault-injection layer (in `wukong-net`) and the recovery path (in
//! `wukong-core`) both record into one shared [`FaultCounters`] so a
//! single snapshot answers "what went wrong and what did the engine do
//! about it" for an experiment interval. The counters follow the same
//! monotonic snapshot/delta discipline as `FabricMetrics`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of injected faults and the engine's reactions.
#[derive(Debug, Default)]
pub struct FaultCounters {
    msgs_dropped: AtomicU64,
    msgs_duplicated: AtomicU64,
    msgs_delayed: AtomicU64,
    retransmits: AtomicU64,
    rpc_timeouts: AtomicU64,
    rpc_retries: AtomicU64,
    dead_reads: AtomicU64,
    degraded_answers: AtomicU64,
    dedup_suppressed: AtomicU64,
    replayed_batches: AtomicU64,
    recoveries: AtomicU64,
    node_kills: AtomicU64,
    node_restarts: AtomicU64,
    ops_slowed: AtomicU64,
    msgs_corrupted: AtomicU64,
    checkpoints_corrupted: AtomicU64,
}

macro_rules! bump {
    ($($(#[$doc:meta])* $fn_name:ident => $field:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $fn_name(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl FaultCounters {
    bump! {
        /// A message was dropped by a lossy link or a dead destination.
        inc_dropped => msgs_dropped,
        /// A message was delivered twice by a duplicating link.
        inc_duplicated => msgs_duplicated,
        /// A message was delivered late by a delaying link.
        inc_delayed => msgs_delayed,
        /// A dropped message was re-sent by the at-least-once layer.
        inc_retransmit => retransmits,
        /// An RPC wait expired before the reply arrived.
        inc_rpc_timeout => rpc_timeouts,
        /// An RPC was retried after a timeout.
        inc_rpc_retry => rpc_retries,
        /// A one-sided read targeted a dead node.
        inc_dead_read => dead_reads,
        /// A query answered with partial results (unreachable shards).
        inc_degraded => degraded_answers,
        /// A duplicated or replayed batch was suppressed by VTS dedup.
        inc_dedup_suppressed => dedup_suppressed,
        /// A logged batch was replayed during recovery.
        inc_replayed_batch => replayed_batches,
        /// A full checkpoint-and-log recovery completed.
        inc_recovery => recoveries,
        /// A node was killed by the fault schedule or a drill.
        inc_kill => node_kills,
        /// A dead node was restarted.
        inc_restart => node_restarts,
        /// A fabric operation was charged extra by a slow-node rule.
        inc_slowed => ops_slowed,
        /// A bit was flipped in an in-flight message payload.
        inc_corrupt_msg => msgs_corrupted,
        /// A bit was flipped in a captured checkpoint image.
        inc_corrupt_checkpoint => checkpoints_corrupted,
    }

    /// Adds `n` suppressed duplicates at once.
    pub fn add_dedup_suppressed(&self, n: u64) {
        self.dedup_suppressed.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` replayed batches at once.
    pub fn add_replayed_batches(&self, n: u64) {
        self.replayed_batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            msgs_dropped: self.msgs_dropped.load(Ordering::Relaxed),
            msgs_duplicated: self.msgs_duplicated.load(Ordering::Relaxed),
            msgs_delayed: self.msgs_delayed.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            rpc_timeouts: self.rpc_timeouts.load(Ordering::Relaxed),
            rpc_retries: self.rpc_retries.load(Ordering::Relaxed),
            dead_reads: self.dead_reads.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
            dedup_suppressed: self.dedup_suppressed.load(Ordering::Relaxed),
            replayed_batches: self.replayed_batches.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            node_kills: self.node_kills.load(Ordering::Relaxed),
            node_restarts: self.node_restarts.load(Ordering::Relaxed),
            ops_slowed: self.ops_slowed.load(Ordering::Relaxed),
            msgs_corrupted: self.msgs_corrupted.load(Ordering::Relaxed),
            checkpoints_corrupted: self.checkpoints_corrupted.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FaultCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Messages dropped by lossy links or dead destinations.
    pub msgs_dropped: u64,
    /// Messages delivered twice by duplicating links.
    pub msgs_duplicated: u64,
    /// Messages delivered late by delaying links.
    pub msgs_delayed: u64,
    /// Drops repaired by the at-least-once retransmit layer.
    pub retransmits: u64,
    /// RPC waits that expired before a reply arrived.
    pub rpc_timeouts: u64,
    /// RPC attempts made after a timeout.
    pub rpc_retries: u64,
    /// One-sided reads that targeted a dead node.
    pub dead_reads: u64,
    /// Queries answered with partial results.
    pub degraded_answers: u64,
    /// Duplicated/replayed batches suppressed by VTS dedup.
    pub dedup_suppressed: u64,
    /// Logged batches replayed during recovery.
    pub replayed_batches: u64,
    /// Completed checkpoint-and-log recoveries.
    pub recoveries: u64,
    /// Nodes killed by the fault schedule or a drill.
    pub node_kills: u64,
    /// Dead nodes restarted.
    pub node_restarts: u64,
    /// Fabric operations charged extra by slow-node (gray failure) rules.
    pub ops_slowed: u64,
    /// In-flight message payloads that had a bit flipped.
    pub msgs_corrupted: u64,
    /// Captured checkpoint images that had a bit flipped.
    pub checkpoints_corrupted: u64,
}

impl FaultSnapshot {
    /// Difference of two snapshots (`later - self`).
    pub fn delta(&self, later: &FaultSnapshot) -> FaultSnapshot {
        FaultSnapshot {
            msgs_dropped: later.msgs_dropped - self.msgs_dropped,
            msgs_duplicated: later.msgs_duplicated - self.msgs_duplicated,
            msgs_delayed: later.msgs_delayed - self.msgs_delayed,
            retransmits: later.retransmits - self.retransmits,
            rpc_timeouts: later.rpc_timeouts - self.rpc_timeouts,
            rpc_retries: later.rpc_retries - self.rpc_retries,
            dead_reads: later.dead_reads - self.dead_reads,
            degraded_answers: later.degraded_answers - self.degraded_answers,
            dedup_suppressed: later.dedup_suppressed - self.dedup_suppressed,
            replayed_batches: later.replayed_batches - self.replayed_batches,
            recoveries: later.recoveries - self.recoveries,
            node_kills: later.node_kills - self.node_kills,
            node_restarts: later.node_restarts - self.node_restarts,
            ops_slowed: later.ops_slowed - self.ops_slowed,
            msgs_corrupted: later.msgs_corrupted - self.msgs_corrupted,
            checkpoints_corrupted: later.checkpoints_corrupted - self.checkpoints_corrupted,
        }
    }

    /// `(name, value)` pairs in display order, for report writers.
    pub fn entries(&self) -> [(&'static str, u64); 16] {
        [
            ("msgs_dropped", self.msgs_dropped),
            ("msgs_duplicated", self.msgs_duplicated),
            ("msgs_delayed", self.msgs_delayed),
            ("retransmits", self.retransmits),
            ("rpc_timeouts", self.rpc_timeouts),
            ("rpc_retries", self.rpc_retries),
            ("dead_reads", self.dead_reads),
            ("degraded_answers", self.degraded_answers),
            ("dedup_suppressed", self.dedup_suppressed),
            ("replayed_batches", self.replayed_batches),
            ("recoveries", self.recoveries),
            ("node_kills", self.node_kills),
            ("node_restarts", self.node_restarts),
            ("ops_slowed", self.ops_slowed),
            ("msgs_corrupted", self.msgs_corrupted),
            ("checkpoints_corrupted", self.checkpoints_corrupted),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let c = FaultCounters::default();
        c.inc_dropped();
        c.inc_dropped();
        c.inc_retransmit();
        c.inc_recovery();
        c.add_dedup_suppressed(3);
        let before = c.snapshot();
        c.inc_dropped();
        c.add_replayed_batches(5);
        let d = before.delta(&c.snapshot());
        assert_eq!(d.msgs_dropped, 1);
        assert_eq!(d.replayed_batches, 5);
        assert_eq!(d.retransmits, 0);
        assert_eq!(before.msgs_dropped, 2);
        assert_eq!(before.dedup_suppressed, 3);
        assert_eq!(before.recoveries, 1);
    }

    #[test]
    fn entries_cover_every_field() {
        let c = FaultCounters::default();
        c.inc_duplicated();
        c.inc_delayed();
        c.inc_rpc_timeout();
        c.inc_rpc_retry();
        c.inc_dead_read();
        c.inc_degraded();
        c.inc_kill();
        c.inc_restart();
        c.inc_replayed_batch();
        c.inc_dedup_suppressed();
        c.inc_slowed();
        c.inc_corrupt_msg();
        c.inc_corrupt_checkpoint();
        let s = c.snapshot();
        let names: std::collections::HashSet<_> = s.entries().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 16);
        let lit: u64 = s.entries().iter().map(|(_, v)| v).sum();
        assert_eq!(lit, 13);
    }
}
