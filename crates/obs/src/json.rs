//! A dependency-free JSON value type with serializer and parser.
//!
//! The bench binaries' `--json` mode needs stable machine-readable
//! output and the golden tests need to read it back; with the build
//! fully offline (no serde), this small module provides both. It
//! implements the full JSON grammar except `\u` surrogate pairs are
//! passed through unpaired (sufficient for our ASCII-ish reports).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use `BTreeMap` so serialization order is
/// deterministic — important for golden files.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts into an object; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Member lookup on objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with 2-space indents (what `--json` writes).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf.
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a human-readable error with the byte
/// offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let mut doc = Json::object();
        doc.set("schema_version", Json::from(1u64));
        doc.set("name", Json::from("table2"));
        doc.set(
            "values",
            Json::Arr(vec![Json::from(1.5), Json::Null, Json::Bool(true)]),
        );
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let s = Json::Str("a\"b\\c\nd\té—λ\u{1}".to_string());
        assert_eq!(parse(&s.to_string_compact()).unwrap(), s);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::from(42u64).to_string_compact(), "42");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn parse_errors_are_positions() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("true false").unwrap_err().contains("trailing"));
    }

    #[test]
    fn parses_nested_and_numbers() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": null}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }
}
