//! Causal per-firing tracing: the engine's always-on flight recorder.
//!
//! Aggregate histograms ([`crate::registry`]) answer "how slow are
//! firings on average?"; they cannot answer "why was *that* firing
//! slow?". This module adds the black box (DESIGN.md §14):
//!
//! * **Causal IDs.** A [`BatchId`] is minted when the adaptor seals a
//!   batch and is a pure function of `(stream, batch timestamp)`, so the
//!   same logical batch carries the same identity through dispatch,
//!   injection, store install, shed logs, and recovery replay. A
//!   [`FiringId`] is minted serially when `fire_ready` assembles a window
//!   firing; its [`FiringMeta`] records the query class, per-stream
//!   window `[lo, hi]`, the assigned snapshot, and the set of `BatchId`s
//!   the window consumed — the firing's full lineage.
//! * **Flight recorder.** [`TraceRecorder`] keeps a fixed-capacity ring
//!   buffer of compact binary [`TraceEvent`]s per thread. Recording
//!   never allocates on the hot path (each thread's ring is preallocated
//!   on first touch) and a single relaxed atomic load gates the whole
//!   thing off when tracing is disabled. Events carry a global sequence
//!   number; [`TraceRecorder::merged_events`] drains every ring into one
//!   causally ordered timeline.
//! * **Anomaly dumps.** [`TraceRecorder::anomaly`] marks an anomalous
//!   event (shed, re-plan, quarantine, checksum failure, deadline miss),
//!   freezes the recorder, and emits a `trace_dump` [`Json`] containing
//!   the trigger plus every span/marker causally linked to its firing or
//!   batches. A failing chaos cell therefore ships its own reproducer
//!   context.
//!
//! The recorder is engine-global (one per [`crate::Registry`]) and
//! deliberately decoupled from the histogram path: histograms stay
//! authoritative for latency numbers, the recorder is authoritative for
//! causal order.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::Json;
use crate::stage::Stage;

/// Causal identity of one sealed ingest batch.
///
/// Minted at adaptor seal time as a pure function of the stream and the
/// batch's (grid-aligned, strictly positive) timestamp, so the identity
/// survives checkpoint/log recovery replay: replaying a logged batch
/// yields the *same* `BatchId`, which is what makes shed logs, recovery
/// reports, and trace dumps joinable. Packed into a non-zero `u64`
/// (`0` is reserved for [`BatchId::NONE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BatchId(u64);

impl BatchId {
    /// "No batch": the identity carried by events outside any batch.
    pub const NONE: BatchId = BatchId(0);

    /// Mints the identity of the batch sealed on `stream` at `ts`.
    pub fn mint(stream: u16, ts: u64) -> BatchId {
        // Batch timestamps are interval ends on the adaptor's grid and
        // therefore > 0 and far below 2^48; the +1 on the stream keeps
        // the packed value non-zero even for (0, 0).
        BatchId(((stream as u64 + 1) << 48) | (ts & 0x0000_FFFF_FFFF_FFFF))
    }

    /// Whether this is [`BatchId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The stream the batch belongs to.
    pub fn stream(self) -> u16 {
        ((self.0 >> 48).saturating_sub(1)) as u16
    }

    /// The batch's seal timestamp (the window-grid interval end).
    pub fn timestamp(self) -> u64 {
        self.0 & 0x0000_FFFF_FFFF_FFFF
    }

    /// The packed representation carried inside [`TraceEvent`]s.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an identity from its packed representation.
    pub fn from_raw(raw: u64) -> BatchId {
        BatchId(raw)
    }

    /// Stable human/JSON label, e.g. `s0@1200` (`-` for NONE).
    pub fn label(self) -> String {
        if self.is_none() {
            "-".to_string()
        } else {
            format!("s{}@{}", self.stream(), self.timestamp())
        }
    }

    /// Parses a [`BatchId::label`] back into an identity.
    pub fn parse_label(s: &str) -> Option<BatchId> {
        if s == "-" {
            return Some(BatchId::NONE);
        }
        let rest = s.strip_prefix('s')?;
        let (stream, ts) = rest.split_once('@')?;
        Some(BatchId::mint(stream.parse().ok()?, ts.parse().ok()?))
    }
}

/// Causal identity of one window firing, minted serially by
/// [`TraceRecorder::mint_firing`]. `0` is reserved for "no firing".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FiringId(pub u64);

impl FiringId {
    /// "No firing": the identity carried by batch-path events.
    pub const NONE: FiringId = FiringId(0);

    /// Whether this is [`FiringId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Lineage of one firing: everything needed to reconstruct *what* the
/// firing read without re-running it.
#[derive(Debug, Clone, PartialEq)]
pub struct FiringMeta {
    /// The firing's identity.
    pub id: FiringId,
    /// Query class (the registered query's name).
    pub query: String,
    /// Per-stream window `(stream, lo, hi)` the firing evaluated.
    pub windows: Vec<(u16, u64, u64)>,
    /// The SN-VTS snapshot the firing was assigned.
    pub snapshot: u64,
    /// The batches whose tuples the window consumed (capped at
    /// [`TraceRecorder::LINEAGE_CAP`]; see `lineage_truncated`).
    pub batches: Vec<BatchId>,
    /// Whether `batches` was truncated at the cap.
    pub lineage_truncated: bool,
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A stage began (`code` is [`Stage::index`]).
    Enter,
    /// A stage finished (`code` is [`Stage::index`], `arg` is elapsed ns).
    Exit,
    /// A point event (`code` is a [`Marker`] code).
    Marker,
}

impl EventKind {
    fn code(self) -> u8 {
        match self {
            EventKind::Enter => 0,
            EventKind::Exit => 1,
            EventKind::Marker => 2,
        }
    }

    fn from_code(c: u8) -> Option<EventKind> {
        match c {
            0 => Some(EventKind::Enter),
            1 => Some(EventKind::Exit),
            2 => Some(EventKind::Marker),
            _ => None,
        }
    }

    /// Stable snake_case name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Marker => "marker",
        }
    }
}

/// Point events the engine marks on the timeline. The first five are
/// *anomalies* (they trigger a dump); `Hold` is informational (a firing
/// waiting on an unretired snapshot is normal back-pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Marker {
    /// The overload manager shed tuples from a batch (`arg` = tuples).
    Shed,
    /// The adaptive drift detector re-planned a query (`arg` = plan ns).
    Replan,
    /// A shard failed install-site verification and was quarantined
    /// (`arg` = node).
    Quarantine,
    /// A firing held because its assigned snapshot is unretired
    /// (`arg` = assigned snapshot).
    Hold,
    /// A batch or sub-batch failed checksum verification (`arg` = node,
    /// or `u64::MAX` at the batch site).
    ChecksumFail,
    /// A firing exceeded the latency budget and degraded (`arg` =
    /// modeled latency in µs).
    DeadlineMiss,
}

impl Marker {
    /// Every marker, in code order.
    pub const ALL: [Marker; 6] = [
        Marker::Shed,
        Marker::Replan,
        Marker::Quarantine,
        Marker::Hold,
        Marker::ChecksumFail,
        Marker::DeadlineMiss,
    ];

    fn code(self) -> u8 {
        Marker::ALL.iter().position(|m| *m == self).unwrap() as u8
    }

    fn from_code(c: u8) -> Option<Marker> {
        Marker::ALL.get(c as usize).copied()
    }

    /// Stable snake_case name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            Marker::Shed => "shed",
            Marker::Replan => "replan",
            Marker::Quarantine => "quarantine",
            Marker::Hold => "hold",
            Marker::ChecksumFail => "checksum_fail",
            Marker::DeadlineMiss => "deadline_miss",
        }
    }

    /// Parses a [`Marker::name`].
    pub fn parse(s: &str) -> Option<Marker> {
        Marker::ALL.iter().copied().find(|m| m.name() == s)
    }
}

/// One compact span/marker event: 40 bytes, fixed layout, no heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Global causal sequence number (one atomic counter per recorder).
    pub seq: u64,
    /// Enter/Exit/Marker discriminant code.
    pub kind: u8,
    /// [`Stage::index`] for Enter/Exit, [`Marker`] code for Marker.
    pub code: u8,
    /// The firing the event belongs to ([`FiringId::NONE`] on the
    /// batch path).
    pub firing: FiringId,
    /// The batch the event belongs to ([`BatchId::NONE`] on the
    /// query path).
    pub batch: BatchId,
    /// Kind-specific payload (Exit: elapsed ns; markers: see [`Marker`]).
    pub arg: u64,
}

impl TraceEvent {
    /// The decoded event kind.
    pub fn event_kind(&self) -> Option<EventKind> {
        EventKind::from_code(self.kind)
    }

    /// The decoded stage, for Enter/Exit events.
    pub fn stage(&self) -> Option<Stage> {
        match self.event_kind()? {
            EventKind::Enter | EventKind::Exit => Stage::from_index(self.code),
            EventKind::Marker => None,
        }
    }

    /// The decoded marker, for Marker events.
    pub fn marker(&self) -> Option<Marker> {
        match self.event_kind()? {
            EventKind::Marker => Marker::from_code(self.code),
            _ => None,
        }
    }

    /// The event's JSON form inside a `trace_dump`.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object();
        j.set("seq", Json::Num(self.seq as f64));
        match self.event_kind() {
            Some(EventKind::Marker) => {
                j.set("kind", Json::Str("marker".into()));
                j.set(
                    "marker",
                    Json::Str(self.marker().map_or("?", Marker::name).to_string()),
                );
            }
            Some(k) => {
                j.set("kind", Json::Str(k.name().into()));
                j.set(
                    "stage",
                    Json::Str(self.stage().map_or("?", Stage::name).to_string()),
                );
            }
            None => {
                j.set("kind", Json::Str("?".into()));
            }
        }
        j.set("firing", Json::Num(self.firing.0 as f64));
        j.set("batch", Json::Str(self.batch.label()));
        j.set("arg", Json::Num(self.arg as f64));
        j
    }

    /// Rebuilds an event from its [`TraceEvent::to_json`] form.
    pub fn from_json(j: &Json) -> Option<TraceEvent> {
        let seq = j.get("seq")?.as_u64()?;
        let kind_s = j.get("kind")?.as_str()?;
        let (kind, code) = match kind_s {
            "marker" => (
                EventKind::Marker.code(),
                Marker::parse(j.get("marker")?.as_str()?)?.code(),
            ),
            "enter" | "exit" => {
                let stage_name = j.get("stage")?.as_str()?;
                let stage = Stage::ALL
                    .iter()
                    .copied()
                    .find(|s| s.name() == stage_name)?;
                let k = if kind_s == "enter" {
                    EventKind::Enter
                } else {
                    EventKind::Exit
                };
                (k.code(), stage.index())
            }
            _ => return None,
        };
        Some(TraceEvent {
            seq,
            kind,
            code,
            firing: FiringId(j.get("firing")?.as_u64()?),
            batch: BatchId::parse_label(j.get("batch")?.as_str()?)?,
            arg: j.get("arg")?.as_u64()?,
        })
    }
}

/// One thread's fixed-capacity event ring plus its enter/exit depth.
struct Ring {
    buf: Mutex<RingBuf>,
    /// Span-guard nesting depth on this thread; must return to 0 after
    /// every firing (the satellite's accounting assertion).
    depth: AtomicI64,
}

struct RingBuf {
    events: Vec<TraceEvent>,
    /// Index of the next write (the ring wraps here once full).
    next: usize,
    /// Total events ever written (≥ `events.len()`).
    written: u64,
    capacity: usize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Mutex::new(RingBuf {
                events: Vec::with_capacity(capacity),
                next: 0,
                written: 0,
                capacity,
            }),
            depth: AtomicI64::new(0),
        }
    }

    fn push(&self, e: TraceEvent) {
        let mut b = self.buf.lock();
        if b.events.len() < b.capacity {
            b.events.push(e);
        } else {
            // Full: overwrite the oldest slot (capacity was preallocated,
            // so no allocation happens here).
            let i = b.next;
            b.events[i] = e;
        }
        b.next = (b.next + 1) % b.capacity;
        b.written += 1;
    }

    fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let b = self.buf.lock();
        let evicted = b.written.saturating_sub(b.events.len() as u64);
        (b.events.clone(), evicted)
    }
}

thread_local! {
    /// Per-thread cache of `(recorder id, ring)` registrations — each
    /// thread touches a handful of recorders at most, so a linear scan
    /// beats hashing.
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };

    /// The scoped recorder stack installed by [`with_recorder`]; lets
    /// lower layers (the query executor's fork-join paths) emit spans
    /// without threading a recorder through every signature.
    static CURRENT: RefCell<Vec<(Arc<TraceRecorder>, FiringId, u64)>> =
        const { RefCell::new(Vec::new()) };
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// Counter snapshot of the recorder, for bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Whether recording was enabled at snapshot time.
    pub enabled: bool,
    /// Events ever emitted (across all thread rings, including evicted).
    pub events: u64,
    /// Events evicted by ring wraparound.
    pub evicted: u64,
    /// Firings minted.
    pub firings: u64,
    /// Anomaly dumps captured (still held).
    pub dumps: u64,
    /// Anomaly dumps suppressed once the dump cap filled.
    pub dumps_suppressed: u64,
}

impl TraceSnapshot {
    /// `(name, value)` pairs for JSON reports, in stable order.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("enabled", self.enabled as u64),
            ("events", self.events),
            ("evicted", self.evicted),
            ("firings", self.firings),
            ("dumps", self.dumps),
            ("dumps_suppressed", self.dumps_suppressed),
        ]
    }
}

/// The engine's flight recorder. One lives in every [`crate::Registry`].
pub struct TraceRecorder {
    id: u64,
    enabled: AtomicBool,
    frozen: AtomicBool,
    seq: AtomicU64,
    next_firing: AtomicU64,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    firings: Mutex<Vec<FiringMeta>>,
    dumps: Mutex<Vec<Json>>,
    dumps_suppressed: AtomicU64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::with_capacity(Self::DEFAULT_RING_CAPACITY)
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("TraceRecorder")
            .field("enabled", &s.enabled)
            .field("events", &s.events)
            .field("dumps", &s.dumps)
            .finish()
    }
}

impl TraceRecorder {
    /// Default per-thread ring capacity, in events.
    pub const DEFAULT_RING_CAPACITY: usize = 4096;
    /// Max `BatchId`s recorded per firing before lineage truncates.
    pub const LINEAGE_CAP: usize = 1024;
    /// Max firing metas retained (older lineage ages out first).
    pub const FIRING_CAP: usize = 4096;
    /// Max anomaly dumps held before further anomalies only count.
    pub const DUMP_CAP: usize = 16;

    /// A recorder with the given per-thread ring capacity (≥ 1).
    /// Recording starts enabled — the flight recorder is always-on
    /// unless the engine's config (`WUKONG_TRACE=0`) turns it off.
    pub fn with_capacity(ring_capacity: usize) -> TraceRecorder {
        TraceRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(true),
            frozen: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            next_firing: AtomicU64::new(1),
            ring_capacity: ring_capacity.max(1),
            rings: Mutex::new(Vec::new()),
            firings: Mutex::new(Vec::new()),
            dumps: Mutex::new(Vec::new()),
            dumps_suppressed: AtomicU64::new(0),
        }
    }

    /// Turns recording on/off (the `WUKONG_TRACE` gate).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn recording(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) && !self.frozen.load(Ordering::Relaxed)
    }

    fn thread_ring(&self) -> Arc<Ring> {
        THREAD_RINGS.with(|cell| {
            let mut v = cell.borrow_mut();
            if let Some((_, ring)) = v.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(Ring::new(self.ring_capacity));
            self.rings.lock().push(Arc::clone(&ring));
            v.push((self.id, Arc::clone(&ring)));
            ring
        })
    }

    fn emit(&self, kind: EventKind, code: u8, firing: FiringId, batch: BatchId, arg: u64) {
        if !self.recording() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.thread_ring().push(TraceEvent {
            seq,
            kind: kind.code(),
            code,
            firing,
            batch,
            arg,
        });
    }

    /// Mints the next [`FiringId`] and records its lineage. Call from
    /// the serial firing path so IDs are deterministic per run.
    pub fn mint_firing(
        &self,
        query: &str,
        windows: Vec<(u16, u64, u64)>,
        snapshot: u64,
        mut batches: Vec<BatchId>,
    ) -> FiringId {
        let id = FiringId(self.next_firing.fetch_add(1, Ordering::Relaxed));
        if !self.is_enabled() {
            return id;
        }
        let lineage_truncated = batches.len() > Self::LINEAGE_CAP;
        batches.truncate(Self::LINEAGE_CAP);
        let mut metas = self.firings.lock();
        if metas.len() >= Self::FIRING_CAP {
            metas.remove(0);
        }
        metas.push(FiringMeta {
            id,
            query: query.to_string(),
            windows,
            snapshot,
            batches,
            lineage_truncated,
        });
        id
    }

    /// The recorded lineage of `firing`, if still retained.
    pub fn firing_meta(&self, firing: FiringId) -> Option<FiringMeta> {
        self.firings.lock().iter().find(|m| m.id == firing).cloned()
    }

    /// Opens an RAII stage span: Enter now, Exit (with elapsed ns) when
    /// the guard drops — so early returns and error paths still close
    /// the span (the satellite's accounting fix).
    pub fn span(self: &Arc<Self>, stage: Stage, firing: FiringId, batch: BatchId) -> SpanGuard {
        if !self.recording() {
            return SpanGuard { inner: None };
        }
        self.emit(EventKind::Enter, stage.index(), firing, batch, 0);
        let ring = self.thread_ring();
        ring.depth.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            inner: Some(SpanInner {
                rec: Arc::clone(self),
                ring,
                stage,
                firing,
                batch,
                start: Instant::now(),
            }),
        }
    }

    /// Marks a non-anomalous point event (e.g. [`Marker::Hold`]).
    pub fn marker(&self, marker: Marker, firing: FiringId, batch: BatchId, arg: u64) {
        self.emit(EventKind::Marker, marker.code(), firing, batch, arg);
    }

    /// Marks an anomalous point event, freezes the recorder, and
    /// captures a `trace_dump` of the trigger's causal neighborhood.
    pub fn anomaly(&self, marker: Marker, firing: FiringId, batch: BatchId, arg: u64) {
        self.emit(EventKind::Marker, marker.code(), firing, batch, arg);
        if !self.is_enabled() {
            return;
        }
        {
            let dumps = self.dumps.lock();
            if dumps.len() >= Self::DUMP_CAP {
                drop(dumps);
                self.dumps_suppressed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // Freeze recording while the dump snapshots the rings, so the
        // captured timeline is a consistent cut.
        self.frozen.store(true, Ordering::Relaxed);
        let dump = self.build_dump(marker, firing, batch, arg);
        self.frozen.store(false, Ordering::Relaxed);
        let mut dumps = self.dumps.lock();
        if dumps.len() < Self::DUMP_CAP {
            dumps.push(dump);
        } else {
            self.dumps_suppressed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn build_dump(&self, marker: Marker, firing: FiringId, batch: BatchId, arg: u64) -> Json {
        let (events, evicted) = self.merged_with_evicted();
        // The causal closure: the trigger's firing, that firing's
        // consumed batches, plus the trigger's own batch.
        let meta = if firing.is_none() {
            None
        } else {
            self.firing_meta(firing)
        };
        let mut linked_batches: BTreeSet<BatchId> = BTreeSet::new();
        if !batch.is_none() {
            linked_batches.insert(batch);
        }
        if let Some(m) = &meta {
            linked_batches.extend(m.batches.iter().copied());
        }
        let linked = |e: &TraceEvent| {
            (!firing.is_none() && e.firing == firing)
                || (!e.batch.is_none() && linked_batches.contains(&e.batch))
        };
        let causal: Vec<&TraceEvent> = events.iter().filter(|e| linked(e)).collect();

        let mut trigger = Json::object();
        trigger.set("marker", Json::Str(marker.name().into()));
        trigger.set("firing", Json::Num(firing.0 as f64));
        trigger.set("batch", Json::Str(batch.label()));
        trigger.set("arg", Json::Num(arg as f64));

        let mut dump = Json::object();
        dump.set("kind", Json::Str("trace_dump".into()));
        // Matches wukong-bench's `JSON_SCHEMA_VERSION` (the dump is part
        // of the same report family); the bench golden test pins the two
        // together, so bump both or neither.
        dump.set("schema_version", Json::Num(8.0));
        dump.set("trigger", trigger);
        if let Some(m) = &meta {
            dump.set("firing", firing_meta_json(m));
        }
        dump.set(
            "linked_batches",
            Json::Arr(
                linked_batches
                    .iter()
                    .map(|b| Json::Str(b.label()))
                    .collect(),
            ),
        );
        dump.set(
            "events",
            Json::Arr(causal.iter().map(|e| e.to_json()).collect()),
        );
        dump.set("evicted", Json::Num(evicted as f64));
        dump
    }

    /// All retained events across every thread ring, merged into causal
    /// (sequence-number) order.
    pub fn merged_events(&self) -> Vec<TraceEvent> {
        self.merged_with_evicted().0
    }

    fn merged_with_evicted(&self) -> (Vec<TraceEvent>, u64) {
        let rings: Vec<Arc<Ring>> = self.rings.lock().clone();
        let mut all = Vec::new();
        let mut evicted = 0u64;
        for ring in rings {
            let (events, ev) = ring.snapshot();
            all.extend(events);
            evicted += ev;
        }
        all.sort_by_key(|e| e.seq);
        (all, evicted)
    }

    /// The captured anomaly dumps, oldest first.
    pub fn dumps(&self) -> Vec<Json> {
        self.dumps.lock().clone()
    }

    /// Counter snapshot for bench reports.
    pub fn snapshot(&self) -> TraceSnapshot {
        let (_, evicted) = self.merged_with_evicted();
        TraceSnapshot {
            enabled: self.is_enabled(),
            events: self.seq.load(Ordering::Relaxed),
            evicted,
            firings: self.next_firing.load(Ordering::Relaxed) - 1,
            dumps: self.dumps.lock().len() as u64,
            dumps_suppressed: self.dumps_suppressed.load(Ordering::Relaxed),
        }
    }

    /// The calling thread's current span nesting depth (for the
    /// per-firing depth-returns-to-zero assertion).
    pub fn thread_depth(&self) -> i64 {
        if !self.is_enabled() {
            return 0;
        }
        self.thread_ring().depth.load(Ordering::Relaxed)
    }

    /// Debug assertion that every span opened on this thread has closed.
    /// Call at the end of each firing.
    pub fn debug_assert_depth_zero(&self, context: &str) {
        if cfg!(debug_assertions) {
            let d = self.thread_depth();
            debug_assert_eq!(d, 0, "unbalanced stage spans after {context}: depth {d}");
        }
    }
}

/// The JSON form of a firing's lineage inside a `trace_dump`.
pub fn firing_meta_json(m: &FiringMeta) -> Json {
    let mut j = Json::object();
    j.set("id", Json::Num(m.id.0 as f64));
    j.set("query", Json::Str(m.query.clone()));
    j.set("snapshot", Json::Num(m.snapshot as f64));
    j.set(
        "windows",
        Json::Arr(
            m.windows
                .iter()
                .map(|(s, lo, hi)| {
                    let mut w = Json::object();
                    w.set("stream", Json::Num(*s as f64));
                    w.set("lo", Json::Num(*lo as f64));
                    w.set("hi", Json::Num(*hi as f64));
                    w
                })
                .collect(),
        ),
    );
    j.set(
        "batches",
        Json::Arr(m.batches.iter().map(|b| Json::Str(b.label())).collect()),
    );
    j.set("lineage_truncated", Json::Bool(m.lineage_truncated));
    j
}

struct SpanInner {
    rec: Arc<TraceRecorder>,
    ring: Arc<Ring>,
    stage: Stage,
    firing: FiringId,
    batch: BatchId,
    start: Instant,
}

/// RAII stage span: emits Exit (with elapsed wall ns) on drop, so every
/// Enter has a matching Exit even on early-return/error paths.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            s.ring.depth.fetch_sub(1, Ordering::Relaxed);
            let ns = s.start.elapsed().as_nanos() as u64;
            s.rec
                .emit(EventKind::Exit, s.stage.index(), s.firing, s.batch, ns);
        }
    }
}

/// Installs `rec` as the calling thread's scoped recorder for the
/// duration of `f`, attributing [`scoped_span`]s to `firing`/`batch`.
/// Used by the engine around executor calls so the query crate can emit
/// spans without signature changes.
pub fn with_recorder<R>(
    rec: &Arc<TraceRecorder>,
    firing: FiringId,
    batch: BatchId,
    f: impl FnOnce() -> R,
) -> R {
    CURRENT.with(|c| c.borrow_mut().push((Arc::clone(rec), firing, batch.raw())));
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

/// Opens a stage span against the thread's scoped recorder (a no-op
/// guard when none is installed — e.g. outside the engine).
pub fn scoped_span(stage: Stage) -> SpanGuard {
    CURRENT.with(|c| {
        let cur = c.borrow();
        match cur.last() {
            Some((rec, firing, batch)) => rec.span(stage, *firing, BatchId::from_raw(*batch)),
            None => SpanGuard { inner: None },
        }
    })
}

/// The calling thread's scoped recorder context, if any — `(recorder,
/// firing, batch)`. Fork-join code captures this before fanning work out
/// to pool workers (which have their own thread-locals) and re-installs
/// it inside each task closure via [`install_recorder`].
pub fn current() -> Option<(Arc<TraceRecorder>, FiringId, BatchId)> {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .map(|(rec, firing, batch)| (Arc::clone(rec), *firing, BatchId::from_raw(*batch)))
    })
}

/// RAII form of [`with_recorder`]: pushes the context now, pops it when
/// the returned guard drops. Used inside pool-task closures where a
/// wrapping closure is awkward.
pub fn install_recorder(
    rec: &Arc<TraceRecorder>,
    firing: FiringId,
    batch: BatchId,
) -> RecorderScope {
    CURRENT.with(|c| c.borrow_mut().push((Arc::clone(rec), firing, batch.raw())));
    RecorderScope { _priv: () }
}

/// Guard returned by [`install_recorder`]; pops the thread's scoped
/// recorder context on drop.
pub struct RecorderScope {
    _priv: (),
}

impl Drop for RecorderScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Marks a point event against the thread's scoped recorder (no-op when
/// none is installed).
pub fn scoped_marker(marker: Marker, arg: u64) {
    CURRENT.with(|c| {
        let cur = c.borrow();
        if let Some((rec, firing, batch)) = cur.last() {
            rec.marker(marker, *firing, BatchId::from_raw(*batch), arg);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_id_packs_and_labels() {
        let b = BatchId::mint(3, 1200);
        assert!(!b.is_none());
        assert_eq!(b.stream(), 3);
        assert_eq!(b.timestamp(), 1200);
        assert_eq!(b.label(), "s3@1200");
        assert_eq!(BatchId::parse_label("s3@1200"), Some(b));
        assert_eq!(BatchId::parse_label("-"), Some(BatchId::NONE));
        assert_eq!(BatchId::from_raw(b.raw()), b);
        // (0, 0) must still be distinguishable from NONE.
        assert!(!BatchId::mint(0, 0).is_none());
        assert!(BatchId::NONE.is_none());
    }

    #[test]
    fn batch_ids_are_replay_stable() {
        // The same logical batch mints the same identity on replay.
        assert_eq!(BatchId::mint(1, 500), BatchId::mint(1, 500));
        assert_ne!(BatchId::mint(1, 500), BatchId::mint(2, 500));
        assert_ne!(BatchId::mint(1, 500), BatchId::mint(1, 600));
    }

    #[test]
    fn spans_balance_and_merge_in_seq_order() {
        let rec = Arc::new(TraceRecorder::default());
        let fid = rec.mint_firing("q1", vec![(0, 0, 100)], 1, vec![BatchId::mint(0, 100)]);
        {
            let _outer = rec.span(Stage::PatternMatch, fid, BatchId::NONE);
            let _inner = rec.span(Stage::ForkJoinFanout, fid, BatchId::NONE);
            assert_eq!(rec.thread_depth(), 2);
        }
        rec.debug_assert_depth_zero("test firing");
        let events = rec.merged_events();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        let kinds: Vec<_> = events.iter().map(|e| e.event_kind().unwrap()).collect();
        assert_eq!(
            kinds,
            [
                EventKind::Enter,
                EventKind::Enter,
                EventKind::Exit,
                EventKind::Exit
            ]
        );
        // Inner closes before outer (LIFO drop order).
        assert_eq!(events[2].stage(), Some(Stage::ForkJoinFanout));
        assert_eq!(events[3].stage(), Some(Stage::PatternMatch));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Arc::new(TraceRecorder::default());
        rec.set_enabled(false);
        let fid = rec.mint_firing("q1", vec![], 1, vec![]);
        let _g = rec.span(Stage::PatternMatch, fid, BatchId::NONE);
        rec.marker(Marker::Hold, fid, BatchId::NONE, 0);
        rec.anomaly(Marker::Quarantine, fid, BatchId::NONE, 0);
        assert!(rec.merged_events().is_empty());
        assert!(rec.dumps().is_empty());
        assert_eq!(rec.snapshot().events, 0);
        // IDs still mint (results must not depend on the trace flag).
        assert_eq!(fid, FiringId(1));
    }

    #[test]
    fn ring_wraps_evicting_oldest_and_merge_stays_ordered() {
        let rec = Arc::new(TraceRecorder::with_capacity(8));
        for i in 0..20u64 {
            rec.marker(Marker::Hold, FiringId(i), BatchId::NONE, i);
        }
        let events = rec.merged_events();
        assert_eq!(
            events.len(),
            8,
            "ring holds only the newest capacity events"
        );
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        // Oldest evicted: the survivors are exactly seqs 12..=19.
        assert_eq!(events[0].seq, 12);
        assert_eq!(events.last().unwrap().seq, 19);
        let snap = rec.snapshot();
        assert_eq!(snap.events, 20);
        assert_eq!(snap.evicted, 12);
    }

    #[test]
    fn anomaly_dump_contains_causal_neighborhood_only() {
        let rec = Arc::new(TraceRecorder::default());
        let b1 = BatchId::mint(0, 100);
        let b2 = BatchId::mint(0, 200);
        let fid = rec.mint_firing("q4", vec![(0, 0, 100)], 2, vec![b1]);
        let other = rec.mint_firing("q7", vec![(0, 100, 200)], 2, vec![b2]);
        drop(rec.span(Stage::Injection, FiringId::NONE, b1));
        drop(rec.span(Stage::Injection, FiringId::NONE, b2));
        drop(rec.span(Stage::PatternMatch, fid, BatchId::NONE));
        drop(rec.span(Stage::PatternMatch, other, BatchId::NONE));
        rec.anomaly(Marker::ChecksumFail, fid, b1, 7);
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.get("kind").unwrap().as_str(), Some("trace_dump"));
        let trig = d.get("trigger").unwrap();
        assert_eq!(trig.get("marker").unwrap().as_str(), Some("checksum_fail"));
        assert_eq!(trig.get("batch").unwrap().as_str(), Some("s0@100"));
        let meta = d.get("firing").unwrap();
        assert_eq!(meta.get("query").unwrap().as_str(), Some("q4"));
        let events = d.get("events").unwrap().as_arr().unwrap();
        // b1's injection spans + fid's match spans + the trigger marker,
        // but nothing from b2/other.
        assert_eq!(events.len(), 5);
        for e in events {
            let ev = TraceEvent::from_json(e).unwrap();
            assert!(
                ev.firing == fid || ev.batch == b1,
                "unlinked event leaked into dump: {ev:?}"
            );
        }
        // Post-dump the recorder resumes.
        rec.marker(Marker::Hold, fid, BatchId::NONE, 0);
        assert!(rec.merged_events().len() > events.len());
    }

    #[test]
    fn dump_cap_suppresses_excess() {
        let rec = Arc::new(TraceRecorder::default());
        for i in 0..(TraceRecorder::DUMP_CAP as u64 + 5) {
            rec.anomaly(
                Marker::Shed,
                FiringId::NONE,
                BatchId::mint(0, 100 * (i + 1)),
                i,
            );
        }
        let snap = rec.snapshot();
        assert_eq!(snap.dumps, TraceRecorder::DUMP_CAP as u64);
        assert_eq!(snap.dumps_suppressed, 5);
    }

    #[test]
    fn events_round_trip_through_json() {
        let cases = [
            TraceEvent {
                seq: 7,
                kind: EventKind::Enter.code(),
                code: Stage::Dispatch.index(),
                firing: FiringId::NONE,
                batch: BatchId::mint(1, 300),
                arg: 0,
            },
            TraceEvent {
                seq: 8,
                kind: EventKind::Exit.code(),
                code: Stage::Dispatch.index(),
                firing: FiringId::NONE,
                batch: BatchId::mint(1, 300),
                arg: 12345,
            },
            TraceEvent {
                seq: 9,
                kind: EventKind::Marker.code(),
                code: Marker::DeadlineMiss.code(),
                firing: FiringId(3),
                batch: BatchId::NONE,
                arg: 1500,
            },
        ];
        for e in cases {
            assert_eq!(TraceEvent::from_json(&e.to_json()), Some(e));
        }
    }

    #[test]
    fn scoped_recorder_attributes_spans() {
        let rec = Arc::new(TraceRecorder::default());
        let fid = rec.mint_firing("q1", vec![], 1, vec![]);
        // No recorder installed: no-op.
        drop(scoped_span(Stage::ForkJoinMerge));
        assert!(rec.merged_events().is_empty());
        with_recorder(&rec, fid, BatchId::NONE, || {
            drop(scoped_span(Stage::ForkJoinMerge));
            scoped_marker(Marker::Hold, 1);
        });
        let events = rec.merged_events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.firing == fid));
        // Popped after the closure.
        drop(scoped_span(Stage::ForkJoinMerge));
        assert_eq!(rec.merged_events().len(), 3);
    }

    #[test]
    fn firing_lineage_caps_and_truncates() {
        let rec = TraceRecorder::default();
        let batches: Vec<BatchId> = (1..=(TraceRecorder::LINEAGE_CAP as u64 + 10))
            .map(|i| BatchId::mint(0, i * 100))
            .collect();
        let fid = rec.mint_firing("q1", vec![(0, 0, 1)], 1, batches);
        let meta = rec.firing_meta(fid).unwrap();
        assert_eq!(meta.batches.len(), TraceRecorder::LINEAGE_CAP);
        assert!(meta.lineage_truncated);
    }
}
