//! A windowed relational stream processor (Esper/Storm/Heron essence).
//!
//! The composite baselines process streaming data the way the original
//! systems do: each stream keeps a time-ordered tuple buffer; a triple
//! pattern becomes a full scan over the window producing a *relation*;
//! multi-pattern clauses become hash joins between relations. There is no
//! graph index — exactly the property that makes highly-linked data
//! expensive on relational engines (§2.2, "Join Bomb").

use std::collections::{HashMap, VecDeque};
use wukong_query::ast::{Term, TriplePattern};
use wukong_rdf::{Timestamp, Triple, Vid};

/// Per-tuple engine overhead, modelling the framework cost (JVM tuple
/// wrapping, queue hops, task dispatch) that dominates real deployments.
///
/// Calibration: Fig. 4 shows Storm spending ≈ 2.9 ms on a 831-tuple
/// selection (≈ 3.5 µs/tuple); Heron improves on Storm roughly 2-3×
/// (Table 4 L1/L4); CSPARQL-engine executes hundreds of times slower than
/// Storm on the same windows (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessorProfile {
    /// Engine name for reports.
    pub name: &'static str,
    /// Overhead per tuple touched by an operator, nanoseconds.
    pub per_tuple_ns: u64,
    /// Fixed overhead per operator (bolt) invocation, nanoseconds.
    pub per_op_ns: u64,
}

impl ProcessorProfile {
    /// Apache-Storm-like costs.
    pub fn storm() -> Self {
        ProcessorProfile {
            name: "Storm",
            per_tuple_ns: 3_000,
            per_op_ns: 50_000,
        }
    }

    /// Twitter-Heron-like costs (leaner tuple path than Storm).
    pub fn heron() -> Self {
        ProcessorProfile {
            name: "Heron",
            per_tuple_ns: 1_200,
            per_op_ns: 30_000,
        }
    }

    /// CSPARQL-engine-like costs (Esper interpretation + Jena bridging).
    pub fn csparql() -> Self {
        ProcessorProfile {
            name: "CSPARQL",
            per_tuple_ns: 120_000,
            per_op_ns: 2_000_000,
        }
    }

    /// Charge for an operator touching `tuples` tuples.
    pub fn op_cost_ns(&self, tuples: usize) -> u64 {
        self.per_op_ns + self.per_tuple_ns * tuples as u64
    }
}

/// A sliding-window tuple buffer for one stream.
#[derive(Debug, Default)]
pub struct WindowBuffer {
    tuples: VecDeque<(Timestamp, Triple)>,
}

impl WindowBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a tuple (timestamps non-decreasing).
    pub fn push(&mut self, ts: Timestamp, t: Triple) {
        debug_assert!(
            self.tuples.back().map(|(b, _)| *b <= ts).unwrap_or(true),
            "stream tuples must arrive in time order"
        );
        self.tuples.push_back((ts, t));
    }

    /// Drops tuples older than `expiry` (exclusive).
    pub fn evict_before(&mut self, expiry: Timestamp) {
        while let Some((ts, _)) = self.tuples.front() {
            if *ts >= expiry {
                break;
            }
            self.tuples.pop_front();
        }
    }

    /// Number of buffered tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Visits tuples with timestamps in `[lo, hi]`.
    pub fn for_each_in(&self, lo: Timestamp, hi: Timestamp, mut f: impl FnMut(&Triple)) {
        let start = self.tuples.partition_point(|(ts, _)| *ts < lo);
        for (ts, t) in self.tuples.iter().skip(start) {
            if *ts > hi {
                break;
            }
            f(t);
        }
    }
}

/// A relation: named columns (query variable IDs) and rows of IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// The variable bound by each column.
    pub vars: Vec<u8>,
    /// The rows.
    pub rows: Vec<Vec<Vid>>,
}

impl Relation {
    /// The unit relation (no columns, one row) — join identity.
    pub fn unit() -> Self {
        Relation {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// An empty relation over the given columns.
    pub fn empty(vars: Vec<u8>) -> Self {
        Relation {
            vars,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Wire size when crossing a system boundary.
    pub fn wire_bytes(&self) -> usize {
        self.rows.len() * self.vars.len().max(1) * std::mem::size_of::<Vid>()
    }
}

/// Scans `triples` with `pattern`, producing the matching relation.
///
/// Constants filter; variables project. A pattern with a repeated
/// variable (`?X p ?X`) keeps only rows where both positions agree.
pub fn scan_pattern<'a>(
    triples: impl Iterator<Item = &'a Triple>,
    pattern: &TriplePattern,
) -> Relation {
    let mut vars = Vec::new();
    if let Term::Var(v) = pattern.s {
        vars.push(v);
    }
    if let Term::Var(v) = pattern.o {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    let mut rel = Relation::empty(vars);
    for t in triples {
        if t.p != pattern.p {
            continue;
        }
        if let Term::Const(c) = pattern.s {
            if t.s != c {
                continue;
            }
        }
        if let Term::Const(c) = pattern.o {
            if t.o != c {
                continue;
            }
        }
        if let (Term::Var(a), Term::Var(b)) = (pattern.s, pattern.o) {
            if a == b && t.s != t.o {
                continue;
            }
        }
        let mut row = Vec::with_capacity(rel.vars.len());
        for &v in &rel.vars {
            let val = match (pattern.s, pattern.o) {
                (Term::Var(a), _) if a == v => t.s,
                (_, Term::Var(b)) if b == v => t.o,
                _ => unreachable!("column var comes from the pattern"),
            };
            row.push(val);
        }
        rel.rows.push(row);
    }
    rel
}

/// Hash-joins two relations on their shared variables (cartesian product
/// when none are shared — the "join bomb" case is real here).
pub fn hash_join(a: &Relation, b: &Relation) -> Relation {
    let shared: Vec<u8> = a
        .vars
        .iter()
        .copied()
        .filter(|v| b.vars.contains(v))
        .collect();
    let mut out_vars = a.vars.clone();
    for &v in &b.vars {
        if !out_vars.contains(&v) {
            out_vars.push(v);
        }
    }
    let b_extra: Vec<usize> = b
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| !a.vars.contains(v))
        .map(|(i, _)| i)
        .collect();

    let key_of = |vars: &[u8], row: &[Vid]| -> Vec<Vid> {
        shared
            .iter()
            .map(|v| row[vars.iter().position(|x| x == v).expect("shared var")])
            .collect()
    };

    // Build on the smaller side.
    let mut table: HashMap<Vec<Vid>, Vec<&Vec<Vid>>> = HashMap::new();
    for row in &b.rows {
        table.entry(key_of(&b.vars, row)).or_default().push(row);
    }

    let mut out = Relation::empty(out_vars);
    for arow in &a.rows {
        if let Some(matches) = table.get(&key_of(&a.vars, arow)) {
            for brow in matches {
                let mut row = arow.clone();
                for &i in &b_extra {
                    row.push(brow[i]);
                }
                out.rows.push(row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_query::GraphName;
    use wukong_rdf::Pid;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Vid(s), Pid(p), Vid(o))
    }

    fn pat(s: Term, p: u64, o: Term) -> TriplePattern {
        TriplePattern {
            s,
            p: Pid(p),
            o,
            graph: GraphName::Stored,
        }
    }

    #[test]
    fn scan_filters_and_projects() {
        let data = [t(1, 4, 10), t(1, 4, 11), t(2, 4, 12), t(1, 5, 13)];
        let rel = scan_pattern(data.iter(), &pat(Term::Const(Vid(1)), 4, Term::Var(0)));
        assert_eq!(rel.vars, vec![0]);
        assert_eq!(rel.rows, vec![vec![Vid(10)], vec![Vid(11)]]);
    }

    #[test]
    fn scan_with_two_vars() {
        let data = [t(1, 4, 10), t(2, 4, 12)];
        let rel = scan_pattern(data.iter(), &pat(Term::Var(0), 4, Term::Var(1)));
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.vars, vec![0, 1]);
    }

    #[test]
    fn repeated_var_requires_equality() {
        let data = [t(1, 4, 1), t(1, 4, 2)];
        let rel = scan_pattern(data.iter(), &pat(Term::Var(0), 4, Term::Var(0)));
        assert_eq!(rel.rows, vec![vec![Vid(1)]]);
    }

    #[test]
    fn join_on_shared_var() {
        // follows(X, Y) ⋈ posts(Y, Z)
        let follows = Relation {
            vars: vec![0, 1],
            rows: vec![vec![Vid(1), Vid(2)], vec![Vid(3), Vid(2)]],
        };
        let posts = Relation {
            vars: vec![1, 2],
            rows: vec![vec![Vid(2), Vid(9)], vec![Vid(4), Vid(8)]],
        };
        let joined = hash_join(&follows, &posts);
        assert_eq!(joined.vars, vec![0, 1, 2]);
        assert_eq!(joined.len(), 2);
        assert!(joined.rows.contains(&vec![Vid(1), Vid(2), Vid(9)]));
    }

    #[test]
    fn join_without_shared_vars_is_cartesian() {
        let a = Relation {
            vars: vec![0],
            rows: vec![vec![Vid(1)], vec![Vid(2)]],
        };
        let b = Relation {
            vars: vec![1],
            rows: vec![vec![Vid(3)], vec![Vid(4)], vec![Vid(5)]],
        };
        assert_eq!(hash_join(&a, &b).len(), 6);
    }

    #[test]
    fn unit_is_join_identity() {
        let a = Relation {
            vars: vec![0],
            rows: vec![vec![Vid(1)]],
        };
        let j = hash_join(&Relation::unit(), &a);
        assert_eq!(j.len(), 1);
        assert_eq!(j.vars, vec![0]);
    }

    #[test]
    fn window_buffer_range_and_eviction() {
        let mut w = WindowBuffer::new();
        for ts in [100u64, 200, 300] {
            w.push(ts, t(1, 2, ts));
        }
        let mut seen = Vec::new();
        w.for_each_in(150, 300, |tr| seen.push(tr.o));
        assert_eq!(seen, vec![Vid(200), Vid(300)]);
        w.evict_before(250);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn profiles_are_ordered_by_overhead() {
        assert!(ProcessorProfile::heron().per_tuple_ns < ProcessorProfile::storm().per_tuple_ns);
        assert!(ProcessorProfile::storm().per_tuple_ns < ProcessorProfile::csparql().per_tuple_ns);
        assert_eq!(ProcessorProfile::storm().op_cost_ns(0), 50_000);
    }
}
