//! The composite design (§2.3, Fig. 3a): stream processor + store.
//!
//! A continuous query splits at `GRAPH` boundaries: stream patterns run
//! on the relational processor (window scans + hash joins), stored
//! patterns run on the store side — either our Wukong cluster (the
//! Storm+Wukong / Heron+Wukong baselines) or a Jena-like triple table
//! (the CSPARQL-engine baseline). Every boundary crossing pays the
//! *cross-system cost*: per-tuple data transformation plus transmission.
//!
//! Two query plans reproduce Fig. 4:
//!
//! - [`CompositePlan::Interleaved`] (Fig. 4a): execute segments in query
//!   order, shipping bindings across the boundary at each alternation.
//! - [`CompositePlan::StreamFirst`] (Fig. 4b): evaluate and join *all*
//!   stream patterns in the processor first (fewer crossings, but no
//!   store-side pruning — the sub-optimal plan the paper measures).

use crate::relational::{hash_join, scan_pattern, ProcessorProfile, Relation, WindowBuffer};
use crate::triple_table::TripleTable;
use std::sync::Arc;
use std::time::Instant;
use wukong_core::access::NodeAccess;
use wukong_core::cluster::Cluster;
use wukong_core::EngineConfig;
use wukong_net::NodeId;
use wukong_net::TaskTimer;
use wukong_query::bindings::{BindingTable, UNBOUND};
use wukong_query::exec::{ExecContext, StringLiteralResolver};
use wukong_query::{
    execute_step, parse_query, plan_patterns, GraphName, LiteralResolver, Query, QueryError,
    QueryKind, Term, TriplePattern,
};
use wukong_rdf::{StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_store::SnapshotId;

/// Which composite execution plan to use (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositePlan {
    /// Segments in query order, crossing the boundary at each switch.
    Interleaved,
    /// All stream segments first, one crossing to the store and back.
    StreamFirst,
}

/// Configuration of a composite deployment.
#[derive(Debug, Clone, Copy)]
pub struct CompositeProfile {
    /// Display name (`Storm+Wukong`, …).
    pub name: &'static str,
    /// The stream processor's overhead profile.
    pub processor: ProcessorProfile,
    /// `true`: store side is a Wukong cluster; `false`: a Jena-like
    /// triple table (CSPARQL-engine).
    pub graph_store: bool,
    /// Cluster nodes for the store side.
    pub nodes: usize,
    /// Cross-system transformation cost per tuple crossing, ns.
    pub transform_ns_per_tuple: u64,
    /// Fixed cost per boundary crossing (co-located transport), ns.
    pub crossing_base_ns: u64,
}

impl CompositeProfile {
    /// Apache Storm over the Wukong store.
    pub fn storm_wukong(nodes: usize) -> Self {
        CompositeProfile {
            name: "Storm+Wukong",
            processor: ProcessorProfile::storm(),
            graph_store: true,
            nodes,
            // Each crossing re-serialises bindings between Storm tuples
            // and Wukong's ID-encoded query format (string conversion +
            // framing); Fig. 4 attributes ~40% of execution to this.
            transform_ns_per_tuple: 10_000,
            crossing_base_ns: 150_000,
        }
    }

    /// Twitter Heron over the Wukong store.
    pub fn heron_wukong(nodes: usize) -> Self {
        CompositeProfile {
            name: "Heron+Wukong",
            processor: ProcessorProfile::heron(),
            graph_store: true,
            nodes,
            transform_ns_per_tuple: 8_000,
            crossing_base_ns: 120_000,
        }
    }

    /// CSPARQL-engine: Esper-like processor + Jena-like store, one node.
    pub fn csparql() -> Self {
        CompositeProfile {
            name: "CSPARQL-engine",
            processor: ProcessorProfile::csparql(),
            graph_store: false,
            nodes: 1,
            transform_ns_per_tuple: 20_000,
            crossing_base_ns: 1_000_000,
        }
    }
}

/// Per-execution cost breakdown (drives Fig. 4 and the Tables 2-4
/// cross-system-cost analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecBreakdown {
    /// Time inside the stream processor, ms.
    pub stream_ms: f64,
    /// Time inside the store, ms.
    pub store_ms: f64,
    /// Cross-system cost (transform + transmission), ms.
    pub cross_ms: f64,
    /// Boundary crossings performed.
    pub crossings: u32,
}

impl ExecBreakdown {
    /// Total latency, ms.
    pub fn total_ms(&self) -> f64 {
        self.stream_ms + self.store_ms + self.cross_ms
    }

    /// Cross-system cost share of total.
    pub fn cross_fraction(&self) -> f64 {
        let t = self.total_ms();
        if t == 0.0 {
            0.0
        } else {
            self.cross_ms / t
        }
    }
}

enum StoreSide {
    Wukong(Cluster),
    Jena(TripleTable),
}

struct RegisteredQuery {
    query: Query,
    /// Query stream index → composite stream index.
    stream_map: Vec<usize>,
}

/// A composite deployment: window buffers + a store side.
pub struct Composite {
    profile: CompositeProfile,
    strings: Arc<StringServer>,
    store: StoreSide,
    stream_names: Vec<String>,
    windows: Vec<WindowBuffer>,
    registered: Vec<RegisteredQuery>,
    /// Widest registered range per stream (eviction horizon).
    max_range: Vec<u64>,
}

impl Composite {
    /// Boots a composite deployment.
    pub fn new(profile: CompositeProfile, strings: Arc<StringServer>) -> Self {
        let store = if profile.graph_store {
            let cfg = EngineConfig {
                nodes: profile.nodes,
                ..EngineConfig::single_node()
            };
            StoreSide::Wukong(Cluster::new_with_strings(&cfg, Arc::clone(&strings)))
        } else {
            StoreSide::Jena(TripleTable::new())
        };
        Composite {
            profile,
            strings,
            store,
            stream_names: Vec::new(),
            windows: Vec::new(),
            registered: Vec::new(),
            max_range: Vec::new(),
        }
    }

    /// The profile.
    pub fn profile(&self) -> &CompositeProfile {
        &self.profile
    }

    /// Loads the initially stored dataset (static for composite designs —
    /// they are "not completely stateful", §2.3).
    pub fn load_base(&mut self, triples: impl IntoIterator<Item = Triple>) {
        match &mut self.store {
            StoreSide::Wukong(c) => {
                for t in triples {
                    c.load_base_triple(t);
                }
            }
            StoreSide::Jena(t) => t.load(triples),
        }
    }

    /// Registers a stream by name, returning its index.
    pub fn register_stream(&mut self, name: impl Into<String>) -> StreamId {
        self.stream_names.push(name.into());
        self.windows.push(WindowBuffer::new());
        self.max_range.push(1_000);
        StreamId((self.stream_names.len() - 1) as u16)
    }

    /// Feeds a stream tuple (timestamps non-decreasing per stream).
    pub fn ingest(&mut self, stream: StreamId, triple: Triple, ts: Timestamp) {
        self.windows[stream.0 as usize].push(ts, triple);
    }

    /// Evicts tuples no registered window can reach at time `now`.
    pub fn evict(&mut self, now: Timestamp) {
        for (i, w) in self.windows.iter_mut().enumerate() {
            w.evict_before(now.saturating_sub(self.max_range[i]));
        }
    }

    /// Registers a continuous query.
    pub fn register_continuous(&mut self, text: &str) -> Result<usize, QueryError> {
        let query = parse_query(&self.strings, text)?;
        if query.kind != QueryKind::Continuous {
            return Err(QueryError::Unsupported(
                "composite runs continuous queries".into(),
            ));
        }
        if !query.optional.is_empty()
            || !query.group_by.is_empty()
            || !query.union_groups.is_empty()
            || !query.not_exists.is_empty()
            || !query.construct.is_empty()
        {
            return Err(QueryError::Unsupported(
                "the composite baseline evaluates basic graph patterns only (no OPTIONAL/GROUP BY)"
                    .into(),
            ));
        }
        let mut stream_map = Vec::new();
        for (name, spec) in &query.streams {
            let idx = self
                .stream_names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| QueryError::Unresolved(format!("stream {name}")))?;
            self.max_range[idx] = self.max_range[idx].max(spec.range_ms);
            stream_map.push(idx);
        }
        self.registered.push(RegisteredQuery { query, stream_map });
        Ok(self.registered.len() - 1)
    }

    fn segments(patterns: &[TriplePattern], plan: CompositePlan) -> Vec<Vec<TriplePattern>> {
        let mut segs: Vec<Vec<TriplePattern>> = Vec::new();
        let push = |segs: &mut Vec<Vec<TriplePattern>>, p: &TriplePattern| {
            let is_stream = matches!(p.graph, GraphName::Stream(_));
            match segs.last_mut() {
                Some(last) if matches!(last[0].graph, GraphName::Stream(_)) == is_stream => {
                    last.push(*p)
                }
                _ => segs.push(vec![*p]),
            }
        };
        match plan {
            CompositePlan::Interleaved => {
                for p in patterns {
                    push(&mut segs, p);
                }
            }
            CompositePlan::StreamFirst => {
                for p in patterns
                    .iter()
                    .filter(|p| matches!(p.graph, GraphName::Stream(_)))
                {
                    push(&mut segs, p);
                }
                for p in patterns.iter().filter(|p| p.graph == GraphName::Stored) {
                    push(&mut segs, p);
                }
            }
        }
        segs
    }

    fn stream_segment(
        &self,
        r: &RegisteredQuery,
        seg: &[TriplePattern],
        acc: Relation,
        now: Timestamp,
        bd: &mut ExecBreakdown,
    ) -> Relation {
        let t0 = Instant::now();
        let mut charged = 0u64;
        let mut acc = acc;
        for p in seg {
            let qidx = match p.graph {
                GraphName::Stream(i) => i,
                GraphName::Stored => unreachable!("stream segment holds stream patterns"),
            };
            let (_, spec) = r.query.streams[qidx];
            let widx = r.stream_map[qidx];
            let lo = now.saturating_sub(spec.range_ms) + 1;
            let buffer = &self.windows[widx];
            let mut window_tuples = Vec::new();
            buffer.for_each_in(lo, now, |t| window_tuples.push(*t));
            charged += self.profile.processor.op_cost_ns(window_tuples.len());
            let rel = scan_pattern(window_tuples.iter(), p);
            charged += self.profile.processor.op_cost_ns(acc.len() + rel.len());
            acc = hash_join(&acc, &rel);
        }
        bd.stream_ms += t0.elapsed().as_nanos() as f64 / 1e6 + charged as f64 / 1e6;
        acc
    }

    fn cross(&self, tuples: usize, bytes: usize, bd: &mut ExecBreakdown) {
        let ns = self.profile.crossing_base_ns
            + self.profile.transform_ns_per_tuple * tuples as u64
            // Co-located transport: loopback at ~1 GB/s.
            + bytes as u64;
        bd.cross_ms += ns as f64 / 1e6;
        bd.crossings += 1;
    }

    fn stored_segment(
        &self,
        r: &RegisteredQuery,
        seg: &[TriplePattern],
        acc: Relation,
        bd: &mut ExecBreakdown,
    ) -> Relation {
        // Ship the accumulated bindings to the store side…
        self.cross(acc.len(), acc.wire_bytes(), bd);
        let t0 = Instant::now();
        let out = match &self.store {
            StoreSide::Jena(table) => {
                let (rel, _scanned) = table.evaluate(seg, acc);
                rel
            }
            StoreSide::Wukong(cluster) => {
                // Convert to a binding table, explore, convert back.
                let width = r.query.var_count as usize;
                let mut table = BindingTable::empty(width);
                let mut row_buf = vec![UNBOUND; width.max(1)];
                for row in &acc.rows {
                    row_buf.iter_mut().for_each(|v| *v = UNBOUND);
                    for (col, &var) in acc.vars.iter().enumerate() {
                        row_buf[var as usize] = row[col];
                    }
                    table.push_row(&row_buf);
                }
                if acc.vars.is_empty() && acc.len() == 1 {
                    // Unit relation: seed row.
                    // (already pushed above as an all-unbound row)
                }
                let mut bound = vec![false; width];
                for &v in &acc.vars {
                    bound[v as usize] = true;
                }
                let ctx = ExecContext::stored(SnapshotId::BASE);
                let access = NodeAccess::new(cluster, NodeId(0));
                let plan = plan_patterns(seg, &bound, &access, &ctx);
                let mut timer = TaskTimer::start();
                for step in &plan.steps {
                    table = execute_step(step, &table, &ctx, &access, &mut timer);
                    if table.is_empty() {
                        break;
                    }
                }
                bd.store_ms += timer.charged_ns() as f64 / 1e6;
                // Back to a relation over all now-bound vars.
                let mut vars = acc.vars.clone();
                for p in seg {
                    for t in [p.s, p.o] {
                        if let Term::Var(v) = t {
                            if !vars.contains(&v) {
                                vars.push(v);
                            }
                        }
                    }
                }
                let mut rel = Relation::empty(vars);
                for row in table.iter() {
                    rel.rows
                        .push(rel.vars.iter().map(|&v| row[v as usize]).collect());
                }
                rel
            }
        };
        bd.store_ms += t0.elapsed().as_nanos() as f64 / 1e6;
        // …and ship the results back.
        self.cross(out.len(), out.wire_bytes(), bd);
        out
    }

    /// Computes the query's aggregates over a final relation (COUNT over
    /// rows; numeric functions through the string server).
    fn aggregates(&self, query: &Query, acc: &Relation) -> Vec<Option<f64>> {
        let lit = StringLiteralResolver(&self.strings);
        query
            .aggregates
            .iter()
            .map(|a| {
                if a.func == wukong_query::ast::AggFunc::Count {
                    return Some(acc.len() as f64);
                }
                let col = acc.vars.iter().position(|&v| v == a.var)?;
                let vals: Vec<f64> = acc
                    .rows
                    .iter()
                    .filter_map(|r| lit.numeric(r[col]))
                    .collect();
                if vals.is_empty() {
                    return None;
                }
                Some(match a.func {
                    wukong_query::ast::AggFunc::Count => unreachable!("handled above"),
                    wukong_query::ast::AggFunc::Sum => vals.iter().sum(),
                    wukong_query::ast::AggFunc::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
                    wukong_query::ast::AggFunc::Min => {
                        vals.iter().cloned().fold(f64::INFINITY, f64::min)
                    }
                    wukong_query::ast::AggFunc::Max => {
                        vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    }
                })
            })
            .collect()
    }

    /// Executes registered query `id` with windows ending at `now`.
    ///
    /// Returns the result relation (projected on the `SELECT` variables)
    /// and the cost breakdown.
    pub fn execute(
        &self,
        id: usize,
        now: Timestamp,
        plan: CompositePlan,
    ) -> (Relation, ExecBreakdown) {
        let (rel, _aggs, bd) = self.execute_full(id, now, plan);
        (rel, bd)
    }

    /// Like [`Composite::execute`], also returning the aggregate values.
    pub fn execute_full(
        &self,
        id: usize,
        now: Timestamp,
        plan: CompositePlan,
    ) -> (Relation, Vec<Option<f64>>, ExecBreakdown) {
        let r = &self.registered[id];
        let mut bd = ExecBreakdown::default();
        let segs = Self::segments(&r.query.patterns, plan);
        let mut acc = Relation::unit();
        for seg in &segs {
            if acc.is_empty() {
                break;
            }
            acc = if matches!(seg[0].graph, GraphName::Stream(_)) {
                self.stream_segment(r, seg, acc, now, &mut bd)
            } else {
                self.stored_segment(r, seg, acc, &mut bd)
            };
        }

        // Final filtering + projection happen in the processor.
        let t0 = Instant::now();
        let lit = StringLiteralResolver(&self.strings);
        if !r.query.filters.is_empty() {
            acc.rows.retain(|row| {
                r.query.filters.iter().all(|f| {
                    acc.vars
                        .iter()
                        .position(|&v| v == f.var)
                        .and_then(|col| lit.numeric(row[col]))
                        .map(|x| f.accepts(x))
                        .unwrap_or(false)
                })
            });
        }
        let mut projected = Relation::empty(r.query.select.clone());
        for row in &acc.rows {
            projected.rows.push(
                r.query
                    .select
                    .iter()
                    .map(|&v| {
                        acc.vars
                            .iter()
                            .position(|&x| x == v)
                            .map(|col| row[col])
                            .unwrap_or(Vid(u64::MAX))
                    })
                    .collect(),
            );
        }
        let aggregates = self.aggregates(&r.query, &acc);
        bd.stream_ms += t0.elapsed().as_nanos() as f64 / 1e6;
        (projected, aggregates, bd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_setup(profile: CompositeProfile) -> Composite {
        let strings = Arc::new(StringServer::new());
        let mut c = Composite::new(profile, Arc::clone(&strings));
        let tr = |s: &str, p: &str, o: &str| {
            Triple::new(
                strings.intern_entity(s).unwrap(),
                strings.intern_predicate(p).unwrap(),
                strings.intern_entity(o).unwrap(),
            )
        };
        c.load_base([tr("Logan", "fo", "Erik"), tr("Erik", "fo", "Logan")]);
        let po = c.register_stream("PO");
        let li = c.register_stream("PO-L");
        // ⟨Logan po T-15⟩ @802; ⟨Erik li T-15⟩ @806.
        c.ingest(po, tr("Logan", "po", "T-15"), 802);
        c.ingest(li, tr("Erik", "li", "T-15"), 806);
        c
    }

    const QC: &str = "REGISTER QUERY QC SELECT ?X ?Y ?Z \
         FROM PO [RANGE 10s STEP 1s] \
         FROM PO-L [RANGE 5s STEP 1s] \
         FROM X-Lab \
         WHERE { GRAPH PO { ?X po ?Z } \
                 GRAPH X-Lab { ?X fo ?Y } \
                 GRAPH PO-L { ?Y li ?Z } }";

    #[test]
    fn fig2_qc_on_storm_wukong() {
        let mut c = fig1_setup(CompositeProfile::storm_wukong(1));
        let id = c.register_continuous(QC).unwrap();
        let (rel, bd) = c.execute(id, 810, CompositePlan::Interleaved);
        // "the first execution result at 0810 includes Logan Erik T-15".
        assert_eq!(rel.len(), 1);
        let names: Vec<String> = rel.rows[0]
            .iter()
            .map(|v| c.strings.entity_name(*v).unwrap())
            .collect();
        assert_eq!(names, vec!["Logan", "Erik", "T-15"]);
        // Interleaved plan crosses the boundary twice (to store + back).
        assert_eq!(bd.crossings, 2);
        assert!(bd.cross_ms > 0.0);
        assert!(bd.stream_ms > 0.0);
    }

    #[test]
    fn both_plans_agree_on_results() {
        let mut c = fig1_setup(CompositeProfile::storm_wukong(1));
        let id = c.register_continuous(QC).unwrap();
        let (a, _) = c.execute(id, 810, CompositePlan::Interleaved);
        let (b, _) = c.execute(id, 810, CompositePlan::StreamFirst);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn csparql_profile_uses_triple_table() {
        let mut c = fig1_setup(CompositeProfile::csparql());
        let id = c.register_continuous(QC).unwrap();
        let (rel, bd) = c.execute(id, 810, CompositePlan::Interleaved);
        assert_eq!(rel.len(), 1);
        // The Esper-like processor overhead dominates Storm's.
        let mut s = fig1_setup(CompositeProfile::storm_wukong(1));
        let sid = s.register_continuous(QC).unwrap();
        let (_, sbd) = s.execute(sid, 810, CompositePlan::Interleaved);
        assert!(bd.total_ms() > sbd.total_ms());
    }

    #[test]
    fn windows_gate_results() {
        let mut c = fig1_setup(CompositeProfile::storm_wukong(1));
        let id = c.register_continuous(QC).unwrap();
        // At 802+5000 < like window start: the like has expired.
        let (rel, _) = c.execute(id, 806 + 5_000, CompositePlan::Interleaved);
        assert!(rel.is_empty());
    }

    #[test]
    fn eviction_respects_widest_window() {
        let mut c = fig1_setup(CompositeProfile::storm_wukong(1));
        let _ = c.register_continuous(QC).unwrap();
        c.evict(10_000);
        // PO window is 10 s: the 802 tuple must survive eviction at 10 s.
        assert_eq!(c.windows[0].len(), 1);
        // PO-L max range is 5 s: the like at 806 is gone.
        assert_eq!(c.windows[1].len(), 0);
    }
}
