//! A Jena-like triple-table store.
//!
//! CSPARQL-engine's stored side (Apache Jena) keeps triples in relational
//! tables and answers basic graph patterns with scans and joins. This
//! reimplementation keeps one big triple vector with a predicate
//! partition (Jena's predicate index) but no graph adjacency — each
//! pattern costs a scan of its predicate's partition, and multi-pattern
//! queries cost hash joins over full intermediate relations.

use crate::relational::{hash_join, scan_pattern, Relation};
use std::collections::HashMap;
use wukong_query::ast::TriplePattern;
use wukong_rdf::{Pid, Triple};

/// A predicate-partitioned triple table.
#[derive(Debug, Default)]
pub struct TripleTable {
    by_predicate: HashMap<Pid, Vec<Triple>>,
    len: usize,
}

impl TripleTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple.
    pub fn insert(&mut self, t: Triple) {
        self.by_predicate.entry(t.p).or_default().push(t);
        self.len += 1;
    }

    /// Bulk-loads triples.
    pub fn load(&mut self, triples: impl IntoIterator<Item = Triple>) {
        for t in triples {
            self.insert(t);
        }
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Scans one pattern into a relation. Returns the relation and the
    /// number of triples touched (the scan cost driver).
    pub fn scan(&self, pattern: &TriplePattern) -> (Relation, usize) {
        match self.by_predicate.get(&pattern.p) {
            Some(part) => (scan_pattern(part.iter(), pattern), part.len()),
            None => (scan_pattern([].iter(), pattern), 0),
        }
    }

    /// Evaluates a conjunction of patterns left-to-right with hash joins,
    /// starting from `seed` (the unit relation for standalone queries).
    /// Returns the result and total triples scanned.
    pub fn evaluate(&self, patterns: &[TriplePattern], seed: Relation) -> (Relation, usize) {
        let mut acc = seed;
        let mut scanned = 0;
        for p in patterns {
            if acc.is_empty() {
                break;
            }
            let (rel, cost) = self.scan(p);
            scanned += cost;
            acc = hash_join(&acc, &rel);
        }
        (acc, scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_query::ast::Term;
    use wukong_query::GraphName;
    use wukong_rdf::Vid;

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Vid(s), Pid(p), Vid(o))
    }

    fn pat(s: Term, p: u64, o: Term) -> TriplePattern {
        TriplePattern {
            s,
            p: Pid(p),
            o,
            graph: GraphName::Stored,
        }
    }

    #[test]
    fn scan_costs_whole_predicate_partition() {
        let mut tt = TripleTable::new();
        for i in 0..100 {
            tt.insert(t(i, 4, 1000 + i));
        }
        tt.insert(t(0, 5, 7));
        let (rel, scanned) = tt.scan(&pat(Term::Const(Vid(3)), 4, Term::Var(0)));
        assert_eq!(rel.len(), 1);
        assert_eq!(scanned, 100); // no subject index: full partition walk
    }

    #[test]
    fn evaluate_joins_patterns() {
        let mut tt = TripleTable::new();
        tt.load([t(1, 1, 2), t(2, 2, 9), t(3, 2, 8)]);
        // ?X fo ?Y . ?Y po ?Z
        let (rel, _) = tt.evaluate(
            &[
                pat(Term::Var(0), 1, Term::Var(1)),
                pat(Term::Var(1), 2, Term::Var(2)),
            ],
            Relation::unit(),
        );
        assert_eq!(rel.rows, vec![vec![Vid(1), Vid(2), Vid(9)]]);
    }

    #[test]
    fn empty_accumulator_short_circuits() {
        let mut tt = TripleTable::new();
        tt.insert(t(1, 1, 2));
        let (rel, scanned) = tt.evaluate(
            &[
                pat(Term::Const(Vid(99)), 1, Term::Var(0)),
                pat(Term::Var(0), 1, Term::Var(1)),
            ],
            Relation::unit(),
        );
        assert!(rel.is_empty());
        assert_eq!(scanned, 1); // second pattern never scanned
    }
}
