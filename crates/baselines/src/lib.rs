#![warn(missing_docs)]
//! The baseline systems the Wukong+S evaluation compares against (§6.1).
//!
//! None of the original systems (CSPARQL-engine, Apache Storm, Twitter
//! Heron, Apache Spark, Apache Jena, Esper) can be linked into a Rust
//! workspace, so each is re-implemented down to the *architectural
//! properties the paper's comparison isolates*:
//!
//! - [`relational`]: a windowed relational stream processor — tuple
//!   buffers per stream window, scan + hash-join operators, and a
//!   per-tuple engine overhead profile (Storm vs Heron vs Esper-style).
//! - [`triple_table`]: a Jena-like triple-table store answering patterns
//!   by index-free scans and relational joins ("Join Bomb", §7).
//! - [`composite`]: the composite design (§2.3, Fig. 3a): a continuous
//!   query splits at `GRAPH` boundaries; stream parts run on the
//!   relational processor, stored parts on a store (our Wukong cluster or
//!   the triple table), and every boundary crossing pays transform +
//!   transmission cost. Supports the two query plans of Fig. 4.
//! - [`sparklike`]: a micro-batch engine (Spark-Streaming-like) holding
//!   both stored and streaming data as relations and re-executing full
//!   scan/join pipelines per firing, plus the Structured-Streaming-like
//!   variant with an unbounded input table and the 2017 release's
//!   restriction on non-selective stream queries.
//! - [`wukong_ext`]: the intuitive extension of static Wukong (§6.2):
//!   timestamps coupled into the store, no stream index, no GC.
//!
//! Engine-framework constants (per-tuple overheads, micro-batch
//! scheduling delay) are documented calibration knobs in
//! [`relational::ProcessorProfile`] and [`sparklike::SPARK_STAGE_OVERHEAD_MS`];
//! everything else the baselines spend is genuinely computed work.

pub mod composite;
pub mod relational;
pub mod sparklike;
pub mod triple_table;
pub mod wukong_ext;

pub use composite::{Composite, CompositePlan, CompositeProfile, ExecBreakdown};
pub use relational::{ProcessorProfile, Relation, WindowBuffer};
pub use sparklike::{SparkLike, SparkMode};
pub use triple_table::TripleTable;
pub use wukong_ext::WukongExt;
