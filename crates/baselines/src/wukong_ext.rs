//! Wukong/Ext: the intuitive extension of static Wukong (§6.2, Table 4).
//!
//! Wukong/Ext "directly inserts both streaming data and their timestamps
//! into the underlying store", with two consequences the paper measures:
//!
//! 1. No stream index: extracting a window means walking a key's *whole*
//!    timestamp log and filtering — O(everything ever appended to the
//!    key) instead of O(window).
//! 2. No GC: "deletion is costly and non-trivial after data and
//!    timestamps are coupled together", so timestamps accumulate forever
//!    and memory grows with stream lifetime.
//!
//! The implementation shares the cluster substrate (shards, sharding,
//! fabric) with Wukong+S; only the stream access path differs — which is
//! precisely the ablation the Table 4 comparison makes.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use wukong_core::cluster::Cluster;
use wukong_core::EngineConfig;
use wukong_net::{NodeId, TaskTimer};
use wukong_query::exec::{
    ExecContext, GraphAccess, PatternSource, StringLiteralResolver, WindowInstance,
};
use wukong_query::{
    execute, parse_query, plan_query, GraphName, Query, QueryError, QueryKind, ResultSet,
};
use wukong_rdf::{Key, StreamId, StringServer, Timestamp, Triple, Vid};
use wukong_store::SnapshotId;

/// Per-node timestamp logs: key → every (neighbour, timestamp) append.
type TsLog = HashMap<Key, Vec<(Vid, Timestamp)>>;

/// The Wukong/Ext engine.
pub struct WukongExt {
    cluster: Cluster,
    logs: Vec<RwLock<TsLog>>,
    stream_names: Vec<String>,
    registered: Vec<(Query, Vec<usize>)>,
}

impl WukongExt {
    /// Boots a Wukong/Ext deployment on `nodes` nodes.
    pub fn new(nodes: usize, strings: Arc<StringServer>) -> Self {
        let cfg = EngineConfig {
            nodes,
            ..EngineConfig::single_node()
        };
        WukongExt {
            cluster: Cluster::new_with_strings(&cfg, strings),
            logs: (0..nodes).map(|_| RwLock::new(TsLog::new())).collect(),
            stream_names: Vec::new(),
            registered: Vec::new(),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Loads initial stored data.
    pub fn load_base(&self, triples: impl IntoIterator<Item = Triple>) {
        for t in triples {
            self.cluster.load_base_triple(t);
        }
    }

    /// Registers a stream by name.
    pub fn register_stream(&mut self, name: impl Into<String>) -> StreamId {
        self.stream_names.push(name.into());
        StreamId((self.stream_names.len() - 1) as u16)
    }

    /// Ingests one stream tuple: both the data *and its timestamp* go
    /// into the store-side structures; nothing ever leaves.
    pub fn ingest(&self, _stream: StreamId, triple: Triple, ts: Timestamp) {
        // The data enters the persistent store (all visible: Wukong/Ext
        // has no snapshot machinery either).
        for n in self.cluster.shard_map().nodes_of_triple(&triple) {
            self.cluster.shard(n).load_base(triple);
        }
        // The timestamps couple into per-key logs on the owning nodes.
        let out_key = triple.out_key();
        let in_key = triple.in_key();
        for (key, v) in [(out_key, triple.o), (in_key, triple.s)] {
            let node = self.cluster.shard_map().node_of_key(key);
            self.logs[node as usize]
                .write()
                .entry(key)
                .or_default()
                .push((v, ts));
        }
    }

    /// Total timestamp-log entries (the §6.2 "stale and useless
    /// timestamps will accumulate" memory growth).
    pub fn log_entries(&self) -> usize {
        self.logs
            .iter()
            .map(|l| l.read().values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Registers a continuous query.
    pub fn register_continuous(&mut self, text: &str) -> Result<usize, QueryError> {
        let query = parse_query(self.cluster.strings(), text)?;
        if query.kind != QueryKind::Continuous {
            return Err(QueryError::Unsupported(
                "wukong/ext runs continuous queries".into(),
            ));
        }
        if !query.optional.is_empty()
            || !query.group_by.is_empty()
            || !query.union_groups.is_empty()
            || !query.not_exists.is_empty()
            || !query.construct.is_empty()
        {
            return Err(QueryError::Unsupported(
                "the wukong/ext baseline evaluates basic graph patterns only (no OPTIONAL/GROUP BY)".into(),
            ));
        }
        let mut stream_map = Vec::new();
        for (name, _) in &query.streams {
            let idx = self
                .stream_names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| QueryError::Unresolved(format!("stream {name}")))?;
            stream_map.push(idx);
        }
        self.registered.push((query, stream_map));
        Ok(self.registered.len() - 1)
    }

    /// Executes registered query `id` with windows ending at `now`.
    pub fn execute(&self, id: usize, now: Timestamp) -> (ResultSet, f64) {
        let (query, _) = &self.registered[id];
        let windows = query
            .streams
            .iter()
            .map(|(_, spec)| WindowInstance {
                stream: StreamId(0), // unused: the log is stream-agnostic
                lo: now.saturating_sub(spec.range_ms) + 1,
                hi: now,
            })
            .collect();
        let ctx = ExecContext {
            sn: SnapshotId::BASE,
            windows,
        };
        let access = ExtAccess {
            ext: self,
            home: NodeId(0),
        };
        let plan = plan_query(query, &access, &ctx);
        let lit = StringLiteralResolver(self.cluster.strings());
        let mut timer = TaskTimer::start();
        let rs = execute(query, &plan, &ctx, &access, &lit, &mut timer);
        let ms = timer.total_ms();
        (rs, ms)
    }
}

/// Graph access with the Wukong/Ext stream path: full-log scans.
struct ExtAccess<'a> {
    ext: &'a WukongExt,
    home: NodeId,
}

impl GraphAccess for ExtAccess<'_> {
    fn neighbors(
        &self,
        key: Key,
        src: PatternSource,
        ctx: &ExecContext,
        timer: &mut TaskTimer,
        out: &mut Vec<Vid>,
    ) {
        match src {
            GraphName::Stored => {
                self.ext
                    .cluster
                    .stored_neighbors(self.home, key, SnapshotId::BASE, timer, out);
            }
            GraphName::Stream(i) => {
                let w = ctx.window(i);
                if key.is_index() {
                    // No per-window index either: enumerate the persistent
                    // index (every vertex ever) and keep those with any
                    // in-window activity — the expensive path.
                    let mut all = Vec::new();
                    self.ext.cluster.stored_neighbors(
                        self.home,
                        key,
                        SnapshotId::BASE,
                        timer,
                        &mut all,
                    );
                    for v in all {
                        let vkey = Key::new(v, key.pid(), key.dir().flip()).vid();
                        // Rebuild the data key in the index's direction.
                        let _ = vkey;
                        let data_key = Key::new(v, key.pid(), key.dir());
                        let node = self.ext.cluster.shard_map().node_of_key(data_key);
                        let log = self.ext.logs[node as usize].read();
                        if let Some(entries) = log.get(&data_key) {
                            if entries.iter().any(|(_, ts)| *ts >= w.lo && *ts <= w.hi) {
                                out.push(v);
                            }
                        }
                        if NodeId(node) != self.home {
                            self.ext.cluster.fabric().charge_read(
                                self.home,
                                NodeId(node),
                                16,
                                timer,
                            );
                        }
                    }
                } else {
                    // Walk the key's entire timestamp log, filter by the
                    // window (O(all appends), the §6.2 cost).
                    let node = self.ext.cluster.shard_map().node_of_key(key);
                    let log = self.ext.logs[node as usize].read();
                    let mut scanned = 0usize;
                    if let Some(entries) = log.get(&key) {
                        for (v, ts) in entries {
                            scanned += 1;
                            if *ts >= w.lo && *ts <= w.hi {
                                out.push(*v);
                            }
                        }
                    }
                    if NodeId(node) != self.home {
                        // The whole log crosses the wire, not just the window.
                        self.ext.cluster.fabric().charge_read(
                            self.home,
                            NodeId(node),
                            scanned * 16,
                            timer,
                        );
                    }
                }
            }
        }
    }

    fn estimate(&self, key: Key, src: PatternSource, _ctx: &ExecContext) -> usize {
        match src {
            GraphName::Stored => self.ext.cluster.stored_len(key, SnapshotId::BASE),
            GraphName::Stream(_) => {
                let node = self.ext.cluster.shard_map().node_of_key(key);
                self.ext.logs[node as usize]
                    .read()
                    .get(&key)
                    .map(Vec::len)
                    .unwrap_or(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_filtering_via_log_scan() {
        let strings = Arc::new(StringServer::new());
        let mut ext = WukongExt::new(2, Arc::clone(&strings));
        let tr = |a: &str, p: &str, b: &str| {
            Triple::new(
                strings.intern_entity(a).unwrap(),
                strings.intern_predicate(p).unwrap(),
                strings.intern_entity(b).unwrap(),
            )
        };
        ext.load_base([tr("Logan", "fo", "Erik")]);
        let po = ext.register_stream("PO");
        ext.ingest(po, tr("Erik", "po", "T-1"), 100);
        ext.ingest(po, tr("Erik", "po", "T-2"), 5_000);

        let id = ext
            .register_continuous(
                "REGISTER QUERY q SELECT ?Z FROM PO [RANGE 1s STEP 1s] \
                 WHERE { GRAPH PO { Erik po ?Z } }",
            )
            .unwrap();
        let (rs, _) = ext.execute(id, 5_000);
        // Only T-2 is inside the window ending at 5000.
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(strings.entity_name(rs.rows[0][0]).unwrap(), "T-2");
        // Both appends live in the logs forever (no GC).
        assert_eq!(ext.log_entries(), 4);
        let (rs2, _) = ext.execute(id, 100_000);
        assert!(rs2.is_empty());
        assert_eq!(ext.log_entries(), 4);
    }

    #[test]
    fn index_scan_over_stream_window() {
        let strings = Arc::new(StringServer::new());
        let mut ext = WukongExt::new(1, Arc::clone(&strings));
        let tr = |a: &str, p: &str, b: &str| {
            Triple::new(
                strings.intern_entity(a).unwrap(),
                strings.intern_predicate(p).unwrap(),
                strings.intern_entity(b).unwrap(),
            )
        };
        let po = ext.register_stream("PO");
        ext.ingest(po, tr("A", "po", "T-1"), 100);
        ext.ingest(po, tr("B", "po", "T-2"), 900);
        let id = ext
            .register_continuous(
                "REGISTER QUERY q SELECT ?X ?Z FROM PO [RANGE 500ms STEP 500ms] \
                 WHERE { GRAPH PO { ?X po ?Z } }",
            )
            .unwrap();
        let (rs, _) = ext.execute(id, 1_000);
        assert_eq!(rs.rows.len(), 1); // only B's post is in [501, 1000]
    }
}
