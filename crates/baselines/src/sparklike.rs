//! Spark-Streaming-like and Structured-Streaming-like engines (§6.2).
//!
//! Both hold stored and streaming data as immutable relations and
//! re-execute the whole scan/join pipeline on every firing:
//!
//! - [`SparkMode::MicroBatch`] (Spark Streaming): stream data lives in
//!   window-bounded RDD-like buffers; each query execution scans the full
//!   stored relation per stored pattern and the window per stream
//!   pattern, then hash-joins — "costly join operations for all of the
//!   streaming and stored data".
//! - [`SparkMode::Structured`] (Structured Streaming): streams are
//!   *unbounded tables* — history is never evicted, so stream scans grow
//!   with time; and, as in the 2017 release, queries that join two
//!   streaming datasets (including self-joins) are rejected
//!   ("Unsupported operation", Table 4's ✗ rows).
//!
//! Each operator stage additionally charges
//! [`SPARK_STAGE_OVERHEAD_MS`] of scheduling/planning delay, the
//! micro-batch floor that keeps these engines at hundreds of
//! milliseconds regardless of data size.

use crate::relational::{hash_join, scan_pattern, Relation};
use std::sync::Arc;
use std::time::Instant;
use wukong_query::exec::StringLiteralResolver;
use wukong_query::{parse_query, GraphName, LiteralResolver, Query, QueryError, QueryKind};
use wukong_rdf::{StreamId, StringServer, Timestamp, Triple};

/// Per-stage scheduling/planning overhead, milliseconds.
///
/// Calibration knob: Spark's micro-batch task scheduling costs tens of
/// milliseconds per stage on the paper's testbed (Tables 3/4 put Spark
/// Streaming at 219-2215 ms per query).
pub const SPARK_STAGE_OVERHEAD_MS: f64 = 40.0;

/// Which Spark flavour to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparkMode {
    /// Spark Streaming: windowed mini-batch RDDs.
    MicroBatch,
    /// Structured Streaming: unbounded input table, restricted joins.
    Structured,
}

struct SparkStream {
    tuples: Vec<(Timestamp, Triple)>,
}

/// A Spark-like deployment.
pub struct SparkLike {
    mode: SparkMode,
    strings: Arc<StringServer>,
    stored: Vec<Triple>,
    stream_names: Vec<String>,
    streams: Vec<SparkStream>,
    registered: Vec<(Query, Vec<usize>)>,
}

impl SparkLike {
    /// Boots a Spark-like engine.
    pub fn new(mode: SparkMode, strings: Arc<StringServer>) -> Self {
        SparkLike {
            mode,
            strings,
            stored: Vec::new(),
            stream_names: Vec::new(),
            streams: Vec::new(),
            registered: Vec::new(),
        }
    }

    /// The mode.
    pub fn mode(&self) -> SparkMode {
        self.mode
    }

    /// Loads the stored dataset (a static DataFrame).
    pub fn load_base(&mut self, triples: impl IntoIterator<Item = Triple>) {
        self.stored.extend(triples);
    }

    /// Registers a stream.
    pub fn register_stream(&mut self, name: impl Into<String>) -> StreamId {
        self.stream_names.push(name.into());
        self.streams.push(SparkStream { tuples: Vec::new() });
        StreamId((self.stream_names.len() - 1) as u16)
    }

    /// Feeds a stream tuple.
    pub fn ingest(&mut self, stream: StreamId, triple: Triple, ts: Timestamp) {
        self.streams[stream.0 as usize].tuples.push((ts, triple));
    }

    /// Evicts stream data older than `expiry` — micro-batch mode only;
    /// the unbounded table keeps everything.
    pub fn evict(&mut self, expiry: Timestamp) {
        if self.mode == SparkMode::MicroBatch {
            for s in &mut self.streams {
                s.tuples.retain(|(ts, _)| *ts >= expiry);
            }
        }
    }

    /// Total stream tuples held (shows the unbounded-table growth).
    pub fn stream_tuples_held(&self) -> usize {
        self.streams.iter().map(|s| s.tuples.len()).sum()
    }

    /// Whether this engine supports `query` (Structured Streaming rejects
    /// plans joining two streaming datasets, §6.2).
    pub fn supports(&self, query: &Query) -> bool {
        if self.mode == SparkMode::MicroBatch {
            return true;
        }
        let stream_patterns = query
            .patterns
            .iter()
            .filter(|p| matches!(p.graph, GraphName::Stream(_)))
            .count();
        stream_patterns <= 1
    }

    /// Registers a continuous query.
    ///
    /// Returns [`QueryError::Unsupported`] for queries the mode rejects.
    pub fn register_continuous(&mut self, text: &str) -> Result<usize, QueryError> {
        let query = parse_query(&self.strings, text)?;
        if query.kind != QueryKind::Continuous {
            return Err(QueryError::Unsupported(
                "spark-like runs continuous queries".into(),
            ));
        }
        if !self.supports(&query) {
            return Err(QueryError::Unsupported(
                "joining two streaming datasets is not supported (Structured Streaming 2.2)".into(),
            ));
        }
        if !query.optional.is_empty()
            || !query.group_by.is_empty()
            || !query.union_groups.is_empty()
            || !query.not_exists.is_empty()
            || !query.construct.is_empty()
        {
            return Err(QueryError::Unsupported(
                "the spark-like baseline evaluates basic graph patterns only (no OPTIONAL/GROUP BY)".into(),
            ));
        }
        let mut stream_map = Vec::new();
        for (name, _) in &query.streams {
            let idx = self
                .stream_names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| QueryError::Unresolved(format!("stream {name}")))?;
            stream_map.push(idx);
        }
        self.registered.push((query, stream_map));
        Ok(self.registered.len() - 1)
    }

    /// Executes registered query `id` with windows ending at `now`.
    ///
    /// Returns the projected relation and the latency in ms (real scan +
    /// join time plus the per-stage scheduling charge).
    pub fn execute(&self, id: usize, now: Timestamp) -> (Relation, f64) {
        let (rel, _aggs, ms) = self.execute_full(id, now);
        (rel, ms)
    }

    /// Like [`SparkLike::execute`], also returning aggregate values.
    pub fn execute_full(&self, id: usize, now: Timestamp) -> (Relation, Vec<Option<f64>>, f64) {
        let (query, stream_map) = &self.registered[id];
        let t0 = Instant::now();
        let mut stages = 0usize;
        let mut acc = Relation::unit();
        for p in &query.patterns {
            if acc.is_empty() {
                break;
            }
            let rel = match p.graph {
                GraphName::Stored => scan_pattern(self.stored.iter(), p),
                GraphName::Stream(qidx) => {
                    let (_, spec) = &query.streams[qidx];
                    let s = &self.streams[stream_map[qidx]];
                    let lo = match self.mode {
                        // Windowed scan vs unbounded-table scan: the
                        // structured mode still *filters* by the window
                        // but must walk its entire history to do so.
                        SparkMode::MicroBatch | SparkMode::Structured => {
                            now.saturating_sub(spec.range_ms) + 1
                        }
                    };
                    let in_window: Vec<Triple> = s
                        .tuples
                        .iter()
                        .filter(|(ts, _)| *ts >= lo && *ts <= now)
                        .map(|(_, t)| *t)
                        .collect();
                    stages += 1; // window materialisation stage
                    scan_pattern(in_window.iter(), p)
                }
            };
            stages += 2; // scan stage + join stage
            acc = hash_join(&acc, &rel);
        }

        // Filters and projection (one more stage).
        stages += 1;
        let lit = StringLiteralResolver(&self.strings);
        if !query.filters.is_empty() {
            acc.rows.retain(|row| {
                query.filters.iter().all(|f| {
                    acc.vars
                        .iter()
                        .position(|&v| v == f.var)
                        .and_then(|col| lit.numeric(row[col]))
                        .map(|x| f.accepts(x))
                        .unwrap_or(false)
                })
            });
        }
        let mut projected = Relation::empty(query.select.clone());
        for row in &acc.rows {
            projected.rows.push(
                query
                    .select
                    .iter()
                    .map(|&v| {
                        acc.vars
                            .iter()
                            .position(|&x| x == v)
                            .map(|col| row[col])
                            .unwrap_or(wukong_rdf::Vid(u64::MAX))
                    })
                    .collect(),
            );
        }

        // Aggregates (one more stage).
        let aggregates: Vec<Option<f64>> = query
            .aggregates
            .iter()
            .map(|a| {
                if a.func == wukong_query::ast::AggFunc::Count {
                    return Some(acc.len() as f64);
                }
                let col = acc.vars.iter().position(|&v| v == a.var)?;
                let vals: Vec<f64> = acc
                    .rows
                    .iter()
                    .filter_map(|r| lit.numeric(r[col]))
                    .collect();
                if vals.is_empty() {
                    return None;
                }
                Some(match a.func {
                    wukong_query::ast::AggFunc::Count => unreachable!("handled above"),
                    wukong_query::ast::AggFunc::Sum => vals.iter().sum(),
                    wukong_query::ast::AggFunc::Avg => vals.iter().sum::<f64>() / vals.len() as f64,
                    wukong_query::ast::AggFunc::Min => {
                        vals.iter().cloned().fold(f64::INFINITY, f64::min)
                    }
                    wukong_query::ast::AggFunc::Max => {
                        vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    }
                })
            })
            .collect();
        if !aggregates.is_empty() {
            stages += 1;
        }

        let compute_ms = t0.elapsed().as_nanos() as f64 / 1e6;
        let structured_penalty = if self.mode == SparkMode::Structured {
            1.5 // incremental-plan maintenance per trigger
        } else {
            1.0
        };
        (
            projected,
            aggregates,
            compute_ms + stages as f64 * SPARK_STAGE_OVERHEAD_MS * structured_penalty,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mode: SparkMode) -> SparkLike {
        let strings = Arc::new(StringServer::new());
        let mut s = SparkLike::new(mode, Arc::clone(&strings));
        let tr = |a: &str, p: &str, b: &str| {
            Triple::new(
                strings.intern_entity(a).unwrap(),
                strings.intern_predicate(p).unwrap(),
                strings.intern_entity(b).unwrap(),
            )
        };
        s.load_base([tr("Logan", "fo", "Erik")]);
        let po = s.register_stream("PO");
        s.ingest(po, tr("Erik", "po", "T-15"), 500);
        s
    }

    const Q: &str = "REGISTER QUERY q SELECT ?X ?Z \
         FROM PO [RANGE 1s STEP 100ms] \
         WHERE { GRAPH PO { ?X po ?Z } . GRAPH G { ?Y fo ?X } }";

    #[test]
    fn microbatch_answers_with_floor_latency() {
        let mut s = setup(SparkMode::MicroBatch);
        let id = s.register_continuous(Q).unwrap();
        let (rel, ms) = s.execute(id, 1_000);
        assert_eq!(rel.len(), 1);
        assert!(
            ms >= SPARK_STAGE_OVERHEAD_MS * 4.0,
            "latency floor missing: {ms}"
        );
    }

    #[test]
    fn structured_rejects_stream_stream_joins() {
        let mut s = setup(SparkMode::Structured);
        let two_streams = "REGISTER QUERY q SELECT ?X \
             FROM PO [RANGE 1s STEP 100ms] \
             WHERE { GRAPH PO { ?X po ?Z . ?Z ht ?T } }";
        assert!(matches!(
            s.register_continuous(two_streams),
            Err(QueryError::Unsupported(_))
        ));
        // Single stream pattern is fine.
        assert!(s.register_continuous(Q).is_ok());
    }

    #[test]
    fn structured_never_evicts() {
        let mut s = setup(SparkMode::Structured);
        s.evict(10_000);
        assert_eq!(s.stream_tuples_held(), 1);
        let mut m = setup(SparkMode::MicroBatch);
        m.evict(10_000);
        assert_eq!(m.stream_tuples_held(), 0);
    }

    #[test]
    fn window_gates_results() {
        let mut s = setup(SparkMode::MicroBatch);
        let id = s.register_continuous(Q).unwrap();
        let (rel, _) = s.execute(id, 5_000);
        assert!(rel.is_empty());
    }
}
