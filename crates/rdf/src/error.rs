//! Error type for the RDF layer.

use core::fmt;

/// Errors produced while encoding identifiers or parsing triple text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// A vertex ID exceeded the 46-bit space of the base store.
    VidOverflow(u64),
    /// A predicate ID exceeded the 17-bit space of the base store.
    PidOverflow(u64),
    /// A line of triple text could not be parsed.
    Parse {
        /// 1-based line number within the parsed input.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A string was looked up that the string server has never interned.
    UnknownString(String),
    /// An ID was looked up that the string server has never issued.
    UnknownId(u64),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::VidOverflow(v) => {
                write!(f, "vertex id {v} exceeds the 46-bit id space")
            }
            RdfError::PidOverflow(p) => {
                write!(f, "predicate id {p} exceeds the 17-bit id space")
            }
            RdfError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            RdfError::UnknownString(s) => write!(f, "unknown string: {s:?}"),
            RdfError::UnknownId(id) => write!(f, "unknown id: {id}"),
        }
    }
}

impl std::error::Error for RdfError {}
