//! A minimal whitespace-separated triple text format.
//!
//! The workload generators and examples exchange data as lines of
//! `subject predicate object`, optionally followed by a timestamp for
//! stream tuples:
//!
//! ```text
//! Logan follow Erik
//! Logan post T-15 0802
//! ```
//!
//! This is deliberately simpler than full W3C N-Triples (no IRIs, no
//! literals with datatypes): the paper's pipeline converts every term to an
//! ID at the string server before it reaches any engine, so the textual
//! form only has to be unambiguous, not standards-complete.

use crate::error::RdfError;
use crate::string_server::StringServer;
use crate::triple::Triple;
use crate::tuple::{StreamTuple, Timestamp};

/// Parses one `s p o` line into an ID triple, interning strings as needed.
pub fn parse_triple(ss: &StringServer, line: &str, lineno: usize) -> Result<Triple, RdfError> {
    let mut it = line.split_whitespace();
    let (s, p, o) = match (it.next(), it.next(), it.next()) {
        (Some(s), Some(p), Some(o)) => (s, p, o),
        _ => {
            return Err(RdfError::Parse {
                line: lineno,
                reason: format!("expected `s p o`, got {line:?}"),
            })
        }
    };
    if it.next().is_some() {
        return Err(RdfError::Parse {
            line: lineno,
            reason: format!("trailing tokens after `s p o` in {line:?}"),
        });
    }
    Ok(Triple::new(
        ss.intern_entity(s)?,
        ss.intern_predicate(p)?,
        ss.intern_entity(o)?,
    ))
}

/// Parses one `s p o timestamp` line into a timeless stream tuple.
///
/// The timing/timeless classification is applied later by the stream
/// Adaptor, which knows the stream's schema; parsing defaults to timeless.
pub fn parse_tuple(ss: &StringServer, line: &str, lineno: usize) -> Result<StreamTuple, RdfError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != 4 {
        return Err(RdfError::Parse {
            line: lineno,
            reason: format!("expected `s p o ts`, got {line:?}"),
        });
    }
    let ts: Timestamp = tokens[3].parse().map_err(|_| RdfError::Parse {
        line: lineno,
        reason: format!("bad timestamp {:?}", tokens[3]),
    })?;
    let triple = Triple::new(
        ss.intern_entity(tokens[0])?,
        ss.intern_predicate(tokens[1])?,
        ss.intern_entity(tokens[2])?,
    );
    Ok(StreamTuple::timeless(triple, ts))
}

/// Parses a whole document of `s p o` lines, skipping blanks and `#` comments.
pub fn parse_document(ss: &StringServer, text: &str) -> Result<Vec<Triple>, RdfError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_triple(ss, line, i + 1)?);
    }
    Ok(out)
}

/// Renders an ID triple back to `s p o` text.
pub fn format_triple(ss: &StringServer, t: &Triple) -> Result<String, RdfError> {
    Ok(format!(
        "{} {} {}",
        ss.entity_name(t.s)?,
        ss.predicate_name(t.p)?,
        ss.entity_name(t.o)?
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_format_roundtrip() {
        let ss = StringServer::new();
        let t = parse_triple(&ss, "Logan follow Erik", 1).unwrap();
        assert_eq!(format_triple(&ss, &t).unwrap(), "Logan follow Erik");
    }

    #[test]
    fn parse_document_skips_comments_and_blanks() {
        let ss = StringServer::new();
        let doc = "# stored data\nLogan follow Erik\n\nErik follow Logan\n";
        let triples = parse_document(&ss, doc).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].s, triples[1].o);
    }

    #[test]
    fn parse_tuple_reads_timestamp() {
        let ss = StringServer::new();
        let t = parse_tuple(&ss, "Logan post T-15 802", 1).unwrap();
        assert_eq!(t.timestamp, 802);
        assert!(t.is_timeless());
    }

    #[test]
    fn malformed_lines_error_with_lineno() {
        let ss = StringServer::new();
        match parse_triple(&ss, "only two", 7) {
            Err(RdfError::Parse { line, .. }) => assert_eq!(line, 7),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_triple(&ss, "a b c d", 1).is_err());
        assert!(parse_tuple(&ss, "a b c notatime", 1).is_err());
        assert!(parse_tuple(&ss, "a b c", 1).is_err());
    }
}
