//! String ↔ ID mapping (the paper's "String Server").
//!
//! To avoid shipping long strings to the servers, every string in data and
//! queries is first converted into a unique ID (§3, Fig. 5; inherited from
//! Wukong). The mapping table is append-only: the paper "simply skips GC
//! for the mapping table, since … some continuous or one-shot queries may
//! access them in the future" (§4.1 footnote 8).
//!
//! Predicates and entities draw from separate ID spaces because the store
//! key packs them with different widths ([`crate::id`]). ID 0 is reserved
//! in both spaces: vertex 0 is the index vertex, predicate 0 is reserved as
//! a catch-all "any" marker used by the query layer.

use crate::error::RdfError;
use crate::id::{Pid, Vid, MAX_PID, MAX_VID};
use parking_lot::RwLock;
use std::collections::HashMap;

#[derive(Default)]
struct Space {
    forward: HashMap<String, u64>,
    reverse: Vec<String>,
}

impl Space {
    fn intern(&mut self, s: &str, max: u64) -> Result<u64, RdfError> {
        if let Some(&id) = self.forward.get(s) {
            return Ok(id);
        }
        // IDs start at 1; slot 0 is reserved.
        let id = self.reverse.len() as u64 + 1;
        if id > max {
            return Err(RdfError::VidOverflow(id));
        }
        self.forward.insert(s.to_owned(), id);
        self.reverse.push(s.to_owned());
        Ok(id)
    }

    fn lookup(&self, s: &str) -> Option<u64> {
        self.forward.get(s).copied()
    }

    fn resolve(&self, id: u64) -> Option<&str> {
        if id == 0 {
            return None;
        }
        self.reverse.get(id as usize - 1).map(String::as_str)
    }
}

/// Thread-safe, append-only string ↔ ID mapping for entities and predicates.
///
/// # Examples
///
/// ```
/// use wukong_rdf::StringServer;
///
/// let ss = StringServer::new();
/// let logan = ss.intern_entity("Logan").unwrap();
/// assert_eq!(ss.intern_entity("Logan").unwrap(), logan); // idempotent
/// assert_eq!(ss.entity_name(logan).unwrap(), "Logan");
/// ```
pub struct StringServer {
    entities: RwLock<Space>,
    predicates: RwLock<Space>,
}

impl Default for StringServer {
    fn default() -> Self {
        Self::new()
    }
}

impl StringServer {
    /// Creates an empty string server.
    pub fn new() -> Self {
        StringServer {
            entities: RwLock::new(Space::default()),
            predicates: RwLock::new(Space::default()),
        }
    }

    /// Interns an entity string, returning its (possibly pre-existing) ID.
    pub fn intern_entity(&self, s: &str) -> Result<Vid, RdfError> {
        // Fast path: read lock only.
        if let Some(id) = self.entities.read().lookup(s) {
            return Ok(Vid(id));
        }
        self.entities.write().intern(s, MAX_VID).map(Vid)
    }

    /// Interns a predicate string, returning its (possibly pre-existing) ID.
    pub fn intern_predicate(&self, s: &str) -> Result<Pid, RdfError> {
        if let Some(id) = self.predicates.read().lookup(s) {
            return Ok(Pid(id));
        }
        self.predicates
            .write()
            .intern(s, MAX_PID)
            .map(Pid)
            .map_err(|_| RdfError::PidOverflow(MAX_PID + 1))
    }

    /// Looks up an already-interned entity without creating it.
    pub fn entity_id(&self, s: &str) -> Result<Vid, RdfError> {
        self.entities
            .read()
            .lookup(s)
            .map(Vid)
            .ok_or_else(|| RdfError::UnknownString(s.to_owned()))
    }

    /// Looks up an already-interned predicate without creating it.
    pub fn predicate_id(&self, s: &str) -> Result<Pid, RdfError> {
        self.predicates
            .read()
            .lookup(s)
            .map(Pid)
            .ok_or_else(|| RdfError::UnknownString(s.to_owned()))
    }

    /// Resolves an entity ID back to its string.
    pub fn entity_name(&self, vid: Vid) -> Result<String, RdfError> {
        self.entities
            .read()
            .resolve(vid.0)
            .map(str::to_owned)
            .ok_or(RdfError::UnknownId(vid.0))
    }

    /// Resolves a predicate ID back to its string.
    pub fn predicate_name(&self, pid: Pid) -> Result<String, RdfError> {
        self.predicates
            .read()
            .resolve(pid.0)
            .map(str::to_owned)
            .ok_or(RdfError::UnknownId(pid.0))
    }

    /// Number of distinct entities interned so far.
    pub fn entity_count(&self) -> usize {
        self.entities.read().reverse.len()
    }

    /// Number of distinct predicates interned so far.
    pub fn predicate_count(&self) -> usize {
        self.predicates.read().reverse.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let ss = StringServer::new();
        let a = ss.intern_entity("a").unwrap();
        let b = ss.intern_entity("b").unwrap();
        assert_ne!(a, b);
        assert_eq!(ss.intern_entity("a").unwrap(), a);
        assert_eq!(ss.entity_count(), 2);
    }

    #[test]
    fn ids_start_at_one() {
        let ss = StringServer::new();
        assert_eq!(ss.intern_entity("x").unwrap(), Vid(1));
        assert_eq!(ss.intern_predicate("p").unwrap(), Pid(1));
    }

    #[test]
    fn lookup_without_intern_fails() {
        let ss = StringServer::new();
        assert!(ss.entity_id("nope").is_err());
        assert!(ss.predicate_id("nope").is_err());
        assert!(ss.entity_name(Vid(5)).is_err());
        assert!(ss.predicate_name(Pid(5)).is_err());
    }

    #[test]
    fn entity_and_predicate_spaces_are_separate() {
        let ss = StringServer::new();
        let v = ss.intern_entity("same").unwrap();
        let p = ss.intern_predicate("same").unwrap();
        assert_eq!(v, Vid(1));
        assert_eq!(p, Pid(1));
        assert_eq!(ss.entity_name(v).unwrap(), "same");
        assert_eq!(ss.predicate_name(p).unwrap(), "same");
    }

    #[test]
    fn roundtrip_many() {
        let ss = StringServer::new();
        let ids: Vec<_> = (0..1000)
            .map(|i| ss.intern_entity(&format!("e{i}")).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(ss.entity_name(*id).unwrap(), format!("e{i}"));
        }
    }

    #[test]
    fn concurrent_intern_agrees() {
        use std::sync::Arc;
        let ss = Arc::new(StringServer::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ss = Arc::clone(&ss);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| ss.intern_entity(&format!("e{i}")).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Vid>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(ss.entity_count(), 100);
    }
}
