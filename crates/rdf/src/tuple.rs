//! Timestamped stream tuples.
//!
//! A stream in the paper (Fig. 1) is a time-ordered sequence of tuples,
//! each a triple plus a timestamp, e.g. `⟨Logan, po, T-15⟩ 0802`. Tuples
//! are further classified (by the Adaptor, §3) into *timeless* data, which
//! is absorbed into the persistent store, and *timing* data, which lives
//! only in the time-based transient store for the lifetime of the windows
//! that need it (§4.1).

use crate::triple::Triple;

/// A logical timestamp on a stream, in milliseconds of stream time.
///
/// C-SPARQL's time model assumes timestamps within one stream are
/// monotonically non-decreasing (§4.3 "Consistency guarantee"), so a plain
/// integer suffices and no out-of-order handling is required.
pub type Timestamp = u64;

/// Identifier of a registered stream (e.g. `Tweet_Stream`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u16);

/// Whether a tuple carries factual (timeless) or transient (timing) data.
///
/// The paper's example: tweets and likes are timeless (they become part of
/// the knowledge base), GPS position updates are timing data (meaningless
/// once the window has passed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TupleKind {
    /// Factual data, absorbed into the continuous persistent store.
    Timeless,
    /// Transient data, stored only in the time-based transient store.
    Timing,
}

/// One element of a stream: a triple, its timestamp, and its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamTuple {
    /// The triple payload.
    pub triple: Triple,
    /// Stream time at which the tuple was produced.
    pub timestamp: Timestamp,
    /// Timeless vs timing classification.
    pub kind: TupleKind,
}

impl StreamTuple {
    /// Creates a timeless tuple.
    pub fn timeless(triple: Triple, timestamp: Timestamp) -> Self {
        StreamTuple {
            triple,
            timestamp,
            kind: TupleKind::Timeless,
        }
    }

    /// Creates a timing tuple.
    pub fn timing(triple: Triple, timestamp: Timestamp) -> Self {
        StreamTuple {
            triple,
            timestamp,
            kind: TupleKind::Timing,
        }
    }

    /// Whether the tuple should be absorbed into the persistent store.
    pub fn is_timeless(&self) -> bool {
        self.kind == TupleKind::Timeless
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{Pid, Vid};

    #[test]
    fn constructors_set_kind() {
        let t = Triple::new(Vid(1), Pid(2), Vid(3));
        assert!(StreamTuple::timeless(t, 0).is_timeless());
        assert!(!StreamTuple::timing(t, 0).is_timeless());
    }
}
