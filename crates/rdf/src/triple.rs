//! ID-encoded RDF triples.

use crate::id::{Dir, Key, Pid, Vid};

/// An RDF triple after string → ID conversion.
///
/// All query processing and storage in Wukong+S operates on ID-encoded
/// triples; the original strings live only in the [`crate::StringServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject vertex.
    pub s: Vid,
    /// Predicate (edge label).
    pub p: Pid,
    /// Object vertex.
    pub o: Vid,
}

impl Triple {
    /// Creates a triple from its three components.
    pub fn new(s: Vid, p: Pid, o: Vid) -> Self {
        Triple { s, p, o }
    }

    /// The store key under which this triple's *out*-edge is recorded
    /// (`[s | p | out] → … o …`).
    pub fn out_key(&self) -> Key {
        Key::new(self.s, self.p, Dir::Out)
    }

    /// The store key under which this triple's *in*-edge is recorded
    /// (`[o | p | in] → … s …`).
    pub fn in_key(&self) -> Key {
        Key::new(self.o, self.p, Dir::In)
    }

    /// The vertex found at the far end of the edge when keyed by `dir`.
    ///
    /// For [`Dir::Out`] keys the neighbour is the object; for [`Dir::In`]
    /// keys it is the subject.
    pub fn neighbor(&self, dir: Dir) -> Vid {
        match dir {
            Dir::Out => self.o,
            Dir::In => self.s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_of_triple() {
        let t = Triple::new(Vid(1), Pid(4), Vid(7));
        assert_eq!(t.out_key(), Key::new(Vid(1), Pid(4), Dir::Out));
        assert_eq!(t.in_key(), Key::new(Vid(7), Pid(4), Dir::In));
    }

    #[test]
    fn neighbor_by_direction() {
        let t = Triple::new(Vid(1), Pid(4), Vid(7));
        assert_eq!(t.neighbor(Dir::Out), Vid(7));
        assert_eq!(t.neighbor(Dir::In), Vid(1));
    }
}
