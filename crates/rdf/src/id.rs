//! Identifier encoding for the base store.
//!
//! The paper's base store (inherited from Wukong, §4.1) keys its key/value
//! pairs by `[vid | eid | d]`: a vertex ID, an edge (predicate) ID and an
//! in/out direction bit. Wukong+S uses 46-bit vertex IDs ("> 70 trillion
//! unique entities", §4.1 footnote 8), which leaves 17 bits for the
//! predicate and 1 bit for the direction in a single 64-bit key.

use crate::RdfError;

/// Number of bits in a vertex ID.
pub const VID_BITS: u32 = 46;
/// Number of bits in a predicate (edge-label) ID.
pub const PID_BITS: u32 = 17;
/// Largest representable vertex ID.
pub const MAX_VID: u64 = (1 << VID_BITS) - 1;
/// Largest representable predicate ID.
pub const MAX_PID: u64 = (1 << PID_BITS) - 1;

/// The reserved vertex ID of the index vertex (`0 INDEX` in Fig. 6).
///
/// Key `[INDEX_VID | pid | d]` maps to every normal vertex that has an edge
/// labelled `pid` in direction `d` — the "reverse mapping from a kind of
/// edge to the normal vertices" of §4.1.
pub const INDEX_VID: Vid = Vid(0);

/// A 46-bit vertex identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vid(pub u64);

impl Vid {
    /// Creates a vertex ID, checking the 46-bit bound.
    pub fn new(raw: u64) -> Result<Self, RdfError> {
        if raw > MAX_VID {
            Err(RdfError::VidOverflow(raw))
        } else {
            Ok(Vid(raw))
        }
    }

    /// Returns `true` for the reserved index vertex.
    pub fn is_index(self) -> bool {
        self == INDEX_VID
    }
}

/// A 17-bit predicate (edge-label) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub u64);

impl Pid {
    /// Creates a predicate ID, checking the 17-bit bound.
    pub fn new(raw: u64) -> Result<Self, RdfError> {
        if raw > MAX_PID {
            Err(RdfError::PidOverflow(raw))
        } else {
            Ok(Pid(raw))
        }
    }
}

/// Edge direction relative to the keyed vertex.
///
/// The encoding follows Fig. 6 of the paper: `0` is `in`, `1` is `out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// The keyed vertex is the *object* of the triple.
    In = 0,
    /// The keyed vertex is the *subject* of the triple.
    Out = 1,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::In => Dir::Out,
            Dir::Out => Dir::In,
        }
    }
}

/// A packed `[vid | pid | dir]` store key (§4.1, Fig. 6).
///
/// The packing is `vid << 18 | pid << 1 | dir`, so keys order first by
/// vertex, then by predicate, then by direction — which keeps all keys of
/// one vertex adjacent in an ordered map and lets the sharding layer route
/// by vertex with a mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(u64);

impl Key {
    /// Packs a key from its parts.
    pub fn new(vid: Vid, pid: Pid, dir: Dir) -> Self {
        debug_assert!(vid.0 <= MAX_VID, "vid out of range");
        debug_assert!(pid.0 <= MAX_PID, "pid out of range");
        Key((vid.0 << (PID_BITS + 1)) | (pid.0 << 1) | dir as u64)
    }

    /// The index key for predicate `pid` in direction `dir` (vertex 0).
    pub fn index(pid: Pid, dir: Dir) -> Self {
        Key::new(INDEX_VID, pid, dir)
    }

    /// The vertex component.
    pub fn vid(self) -> Vid {
        Vid(self.0 >> (PID_BITS + 1))
    }

    /// The predicate component.
    pub fn pid(self) -> Pid {
        Pid((self.0 >> 1) & MAX_PID)
    }

    /// The direction component.
    pub fn dir(self) -> Dir {
        if self.0 & 1 == 0 {
            Dir::In
        } else {
            Dir::Out
        }
    }

    /// Whether this key addresses the index vertex.
    pub fn is_index(self) -> bool {
        self.vid().is_index()
    }

    /// The raw packed representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from [`Key::raw`] output.
    pub fn from_raw(raw: u64) -> Self {
        Key(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let k = Key::new(Vid(123_456), Pid(42), Dir::Out);
        assert_eq!(k.vid(), Vid(123_456));
        assert_eq!(k.pid(), Pid(42));
        assert_eq!(k.dir(), Dir::Out);
    }

    #[test]
    fn key_roundtrip_extremes() {
        let k = Key::new(Vid(MAX_VID), Pid(MAX_PID), Dir::In);
        assert_eq!(k.vid(), Vid(MAX_VID));
        assert_eq!(k.pid(), Pid(MAX_PID));
        assert_eq!(k.dir(), Dir::In);
    }

    #[test]
    fn index_key_is_index() {
        let k = Key::index(Pid(4), Dir::In);
        assert!(k.is_index());
        assert_eq!(k.vid(), INDEX_VID);
        assert_eq!(k.pid(), Pid(4));
    }

    #[test]
    fn vid_bound_checked() {
        assert!(Vid::new(MAX_VID).is_ok());
        assert_eq!(
            Vid::new(MAX_VID + 1),
            Err(RdfError::VidOverflow(MAX_VID + 1))
        );
    }

    #[test]
    fn pid_bound_checked() {
        assert!(Pid::new(MAX_PID).is_ok());
        assert_eq!(
            Pid::new(MAX_PID + 1),
            Err(RdfError::PidOverflow(MAX_PID + 1))
        );
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::In.flip(), Dir::Out);
        assert_eq!(Dir::Out.flip(), Dir::In);
    }

    #[test]
    fn keys_of_same_vertex_are_adjacent() {
        // Ordering by raw key must group by vertex first.
        let a = Key::new(Vid(5), Pid(MAX_PID), Dir::Out);
        let b = Key::new(Vid(6), Pid(0), Dir::In);
        assert!(a < b);
    }

    #[test]
    fn raw_roundtrip() {
        let k = Key::new(Vid(99), Pid(7), Dir::In);
        assert_eq!(Key::from_raw(k.raw()), k);
    }
}
