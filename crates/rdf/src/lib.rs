#![warn(missing_docs)]
//! RDF data model for Wukong+S.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace:
//!
//! - [`Vid`] / [`Pid`]: 46-bit vertex identifiers and 17-bit predicate
//!   identifiers, packed together with a direction bit into a [`Key`] exactly
//!   as the paper's base store does (`[vid|eid|d]`, §4.1, Fig. 6).
//! - [`Triple`]: an ID-encoded RDF triple.
//! - [`StreamTuple`]: a timestamped triple flowing on a named stream
//!   (`⟨Logan, po, T-15⟩ 0802` in the paper's Fig. 1).
//! - [`StringServer`]: the string ↔ ID mapping service ("String Server" in
//!   the paper's architecture, Fig. 5).
//! - [`ntriples`]: a small textual triple format used by the workload
//!   generators and examples.

pub mod error;
pub mod id;
pub mod ntriples;
pub mod string_server;
pub mod triple;
pub mod tuple;

pub use error::RdfError;
pub use id::{Dir, Key, Pid, Vid, INDEX_VID, MAX_PID, MAX_VID};
pub use string_server::StringServer;
pub use triple::Triple;
pub use tuple::{StreamId, StreamTuple, Timestamp, TupleKind};
