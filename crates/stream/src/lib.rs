#![warn(missing_docs)]
//! The streaming layer of Wukong+S (§3, §4.3, Fig. 5 and Fig. 10).
//!
//! Streams flow through a fixed pipeline:
//!
//! 1. The [`adaptor`] batches raw tuples by timestamp into mini-batches,
//!    discards tuples no registered query can use, and classifies each
//!    tuple as *timing* or *timeless*.
//! 2. The [`dispatcher`] partitions each batch across cluster nodes using
//!    the store's sharding.
//! 3. The [`injector`] on each node inserts its sub-batch into the hybrid
//!    store — timeless data into the persistent shard (producing stream
//!    index entries), timing data into the per-stream transient ring.
//! 4. The [`coordinator`] tracks per-node vector timestamps ([`vts`]),
//!    derives the stable vector timestamp that makes batches visible, runs
//!    the SN-VTS plan of *bounded snapshot scalarization* ([`scalarize`]),
//!    and decides when each continuous query's windows are ready
//!    ([`window`], the data-driven execution model).
//!
//! All of it is deterministic, synchronous logic; the `wukong-core` engine
//! owns threads and fabric charges.

pub mod adaptor;
pub mod coordinator;
pub mod dispatcher;
pub mod injector;
pub mod scalarize;
pub mod shed;
pub mod vts;
pub mod window;

pub use adaptor::{Adaptor, Batch, StreamSchema};
pub use coordinator::Coordinator;
pub use dispatcher::{dispatch, SubBatch};
pub use injector::{InjectStats, Injector, NodeStreamStore};
pub use scalarize::{SnVtsPlanner, StalenessBound};
pub use shed::{IngestBudget, ShedPolicy, ShedRecord, Shedder};
pub use vts::Vts;
pub use window::WindowState;
