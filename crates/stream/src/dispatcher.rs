//! The Dispatcher (§3, Fig. 5): batch → per-node sub-batches.
//!
//! A timeless tuple updates up to four store keys, which may live on
//! different nodes, so it is routed to every node owning one of them.
//! Timing tuples update only the two data keys of the transient store
//! (no index vertices). Both stores use the same sharding, co-locating a
//! stream's timing and timeless data (§4.1).

use crate::adaptor::{payload_checksum, Batch};
use wukong_obs::BatchId;
use wukong_rdf::StreamTuple;
use wukong_store::ShardMap;

/// The slice of one batch destined for one node.
#[derive(Debug, Clone)]
pub struct SubBatch {
    /// Causal identity of the parent batch, carried through injection
    /// into the store install so traces can join on it.
    pub batch: BatchId,
    /// Destination node.
    pub node: u16,
    /// The tuples the node must apply (a tuple may appear in several
    /// nodes' sub-batches when its keys span nodes).
    pub tuples: Vec<StreamTuple>,
    /// [`payload_checksum`] of `tuples`, computed at dispatch and
    /// verified at store install — the message-site integrity check.
    pub checksum: u64,
}

impl SubBatch {
    /// Wire size for dispatch cost accounting.
    pub fn wire_bytes(&self) -> usize {
        self.tuples.len() * std::mem::size_of::<StreamTuple>()
    }

    /// Whether `tuples` still matches the dispatch-time checksum.
    pub fn verify(&self) -> bool {
        self.checksum == payload_checksum(&self.tuples)
    }
}

/// Splits `batch` into per-node sub-batches under `shards`.
///
/// Every node receives a (possibly empty) sub-batch so that empty batches
/// still advance every node's local VTS.
pub fn dispatch(batch: &Batch, shards: &ShardMap) -> Vec<SubBatch> {
    let mut subs: Vec<SubBatch> = (0..shards.nodes())
        .map(|n| SubBatch {
            batch: batch.id(),
            node: n,
            tuples: Vec::new(),
            checksum: 0,
        })
        .collect();
    for tup in &batch.tuples {
        // Both kinds route to every node owning one of the triple's keys:
        // timeless tuples update index vertices in the persistent store,
        // timing tuples maintain the per-slice predicate index in the
        // transient store (both live with the index key's owner).
        for n in shards.nodes_of_triple(&tup.triple) {
            subs[n as usize].tuples.push(*tup);
        }
    }
    for sub in &mut subs {
        sub.checksum = payload_checksum(&sub.tuples);
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Pid, StreamId, Triple, Vid};

    fn batch(tuples: Vec<StreamTuple>) -> Batch {
        Batch::sealed(StreamId(0), 100, tuples, 0)
    }

    #[test]
    fn single_node_gets_everything_once() {
        let shards = ShardMap::new(1);
        let b = batch(vec![
            StreamTuple::timeless(Triple::new(Vid(1), Pid(2), Vid(3)), 50),
            StreamTuple::timing(Triple::new(Vid(4), Pid(5), Vid(6)), 60),
        ]);
        let subs = dispatch(&b, &shards);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].tuples.len(), 2);
    }

    #[test]
    fn every_node_receives_a_subbatch() {
        let shards = ShardMap::new(4);
        let subs = dispatch(&batch(vec![]), &shards);
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().all(|s| s.tuples.is_empty()));
    }

    #[test]
    fn timeless_tuple_reaches_all_owning_nodes() {
        let shards = ShardMap::new(8);
        let t = Triple::new(Vid(11), Pid(2), Vid(37));
        let b = batch(vec![StreamTuple::timeless(t, 50)]);
        let subs = dispatch(&b, &shards);
        for owner in shards.nodes_of_triple(&t) {
            assert!(
                subs[owner as usize].tuples.iter().any(|x| x.triple == t),
                "node {owner} missing its tuple"
            );
        }
    }

    #[test]
    fn subbatch_checksums_verify_and_detect_flips() {
        let shards = ShardMap::new(4);
        let b = batch(vec![
            StreamTuple::timeless(Triple::new(Vid(1), Pid(2), Vid(3)), 50),
            StreamTuple::timing(Triple::new(Vid(4), Pid(5), Vid(6)), 60),
            StreamTuple::timeless(Triple::new(Vid(7), Pid(8), Vid(9)), 70),
        ]);
        assert!(b.verify());
        let mut subs = dispatch(&b, &shards);
        assert!(subs.iter().all(SubBatch::verify));
        let sub = subs.iter_mut().find(|s| !s.tuples.is_empty()).unwrap();
        sub.tuples[0].triple.o.0 ^= 1 << 17;
        assert!(!sub.verify(), "single-bit flip must break the checksum");
        sub.tuples[0].triple.o.0 ^= 1 << 17;
        assert!(sub.verify());
    }

    #[test]
    fn timing_tuple_reaches_all_owning_nodes() {
        let shards = ShardMap::new(8);
        let t = Triple::new(Vid(11), Pid(2), Vid(37));
        let b = batch(vec![StreamTuple::timing(t, 50)]);
        let subs = dispatch(&b, &shards);
        let holders: Vec<u16> = subs
            .iter()
            .filter(|s| !s.tuples.is_empty())
            .map(|s| s.node)
            .collect();
        assert_eq!(holders, shards.nodes_of_triple(&t));
    }
}
