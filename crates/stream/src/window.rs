//! Window state and data-driven triggering (§4.3, Fig. 10).
//!
//! Wukong+S invokes a continuous query "when its windows of involved
//! streams are ready": the stable VTS must cover the end of every window
//! of the next execution. [`WindowState`] tracks one query's per-stream
//! windows and computes readiness against a stable VTS.

use crate::vts::Vts;
use wukong_rdf::Timestamp;

/// One stream's window parameters within a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamWindow {
    /// Engine-wide stream index (position in the coordinator's VTS).
    pub stream: usize,
    /// Window length, ms.
    pub range_ms: u64,
    /// Slide step, ms.
    pub step_ms: u64,
}

/// The windows of one registered continuous query, plus its firing cursor.
#[derive(Debug, Clone)]
pub struct WindowState {
    windows: Vec<StreamWindow>,
    /// End timestamp (inclusive) of the next execution's windows.
    next_fire: Timestamp,
    /// The common step: executions advance by the minimum step over
    /// streams (all bundled benchmark queries use equal steps).
    step_ms: u64,
}

impl WindowState {
    /// Creates the window state for a query registered at `registered_at`.
    ///
    /// The first execution fires once every window ending at
    /// `registered_at + step` is covered (the Fig. 2 example registers QC
    /// at 0809 and first executes at 0810).
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty — stored-data-only queries are not
    /// continuous.
    pub fn new(windows: Vec<StreamWindow>, registered_at: Timestamp) -> Self {
        assert!(!windows.is_empty(), "a continuous query needs a window");
        let step_ms = windows.iter().map(|w| w.step_ms).min().expect("non-empty");
        WindowState {
            windows,
            next_fire: registered_at + step_ms,
            step_ms,
        }
    }

    /// The windows.
    pub fn windows(&self) -> &[StreamWindow] {
        &self.windows
    }

    /// End timestamp of the next execution.
    pub fn next_fire(&self) -> Timestamp {
        self.next_fire
    }

    /// Whether the next execution's windows are covered by `stable`.
    pub fn ready(&self, stable: &Vts) -> bool {
        self.windows
            .iter()
            .all(|w| stable.get(w.stream) >= self.next_fire)
    }

    /// Fires the next execution: returns per-stream `(stream, lo, hi)`
    /// window instances (inclusive bounds) and advances the cursor.
    pub fn fire(&mut self) -> Vec<(usize, Timestamp, Timestamp)> {
        let hi = self.next_fire;
        self.next_fire += self.step_ms;
        self.windows
            .iter()
            .map(|w| (w.stream, hi.saturating_sub(w.range_ms) + 1, hi))
            .collect()
    }

    /// Skips executions whose windows have entirely passed `stable` —
    /// used after recovery, where at-least-once semantics allow re-firing
    /// but not unbounded backlog.
    pub fn catch_up(&mut self, stable: &Vts) {
        let horizon = self
            .windows
            .iter()
            .map(|w| stable.get(w.stream))
            .min()
            .unwrap_or(0);
        while self.next_fire + self.step_ms <= horizon {
            self.next_fire += self.step_ms;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vts(e: &[Timestamp]) -> Vts {
        Vts::from_entries(e.to_vec())
    }

    #[test]
    fn fig10_readiness() {
        // QC: S0 window (10,1), S1 window (5,1); registered at 0; next
        // fire at 1. Units here are seconds for readability.
        let mut w = WindowState::new(
            vec![
                StreamWindow {
                    stream: 0,
                    range_ms: 10,
                    step_ms: 1,
                },
                StreamWindow {
                    stream: 1,
                    range_ms: 5,
                    step_ms: 1,
                },
            ],
            4,
        );
        // Fig. 10: needs batch #5 of S0; stable [4,12] is not enough.
        assert_eq!(w.next_fire(), 5);
        assert!(!w.ready(&vts(&[4, 12])));
        assert!(w.ready(&vts(&[5, 12])));
        let inst = w.fire();
        // Window bounds are inclusive: hi=5, lo=hi-range+1 (clamped to
        // stream start, where the earliest batch timestamp is positive).
        assert_eq!(inst[0], (0, 1, 5));
        assert_eq!(inst[1], (1, 1, 5));
        assert_eq!(w.next_fire(), 6);
    }

    #[test]
    fn fire_advances_by_min_step() {
        let mut w = WindowState::new(
            vec![
                StreamWindow {
                    stream: 0,
                    range_ms: 1_000,
                    step_ms: 100,
                },
                StreamWindow {
                    stream: 1,
                    range_ms: 1_000,
                    step_ms: 200,
                },
            ],
            0,
        );
        assert_eq!(w.next_fire(), 100);
        w.fire();
        assert_eq!(w.next_fire(), 200);
    }

    #[test]
    fn catch_up_skips_stale_executions() {
        let mut w = WindowState::new(
            vec![StreamWindow {
                stream: 0,
                range_ms: 10,
                step_ms: 1,
            }],
            0,
        );
        w.catch_up(&vts(&[100]));
        // next_fire advanced near the horizon but at most one step behind.
        assert!(w.next_fire() >= 99);
        assert!(w.next_fire() <= 100);
    }

    #[test]
    #[should_panic(expected = "needs a window")]
    fn windowless_rejected() {
        let _ = WindowState::new(vec![], 0);
    }
}
