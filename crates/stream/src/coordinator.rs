//! The Coordinator (§3, §4.3).
//!
//! Cluster-wide bookkeeping: per-node local VTS, the derived stable VTS
//! (element-wise minimum), and the SN-VTS plan. The engine reports every
//! finished sub-batch insertion; the coordinator answers three questions:
//!
//! 1. Which snapshot must an injector tag a batch with (or must it stall)?
//! 2. What is the stable VTS / stable SN right now?
//! 3. Did the stable snapshot just advance — and if so, up to which
//!    snapshot may shards consolidate?

use crate::scalarize::{SnVtsPlanner, StalenessBound};
use crate::vts::Vts;
use wukong_rdf::Timestamp;
use wukong_store::SnapshotId;

/// What changed after an insertion report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoordinatorEvent {
    /// The stable snapshot advanced to this value.
    pub new_stable_sn: Option<SnapshotId>,
    /// Shards may consolidate intervals up to this snapshot (inclusive);
    /// no new query will read below it.
    pub consolidate_upto: Option<SnapshotId>,
}

/// Cluster-wide stream-consistency state.
#[derive(Debug)]
pub struct Coordinator {
    local_vts: Vec<Vts>,
    stable_vts: Vts,
    planner: SnVtsPlanner,
}

impl Coordinator {
    /// Creates a coordinator for `nodes` nodes and streams with the given
    /// batch intervals.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, intervals: Vec<u64>, staleness: StalenessBound) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        let streams = intervals.len();
        let mut planner = SnVtsPlanner::new(intervals, staleness);
        // Announce the first mapping so injection can start immediately.
        planner.announce_next(&Vts::new(streams));
        Coordinator {
            local_vts: vec![Vts::new(streams); nodes],
            stable_vts: Vts::new(streams),
            planner,
        }
    }

    /// Registers an additional stream mid-flight.
    pub fn add_stream(&mut self, interval_ms: u64) -> usize {
        self.planner.add_stream(interval_ms);
        let n = self.planner.streams();
        for v in &mut self.local_vts {
            v.grow(n);
        }
        self.stable_vts.grow(n);
        n - 1
    }

    /// Number of streams tracked.
    pub fn streams(&self) -> usize {
        self.planner.streams()
    }

    /// Number of nodes tracked.
    pub fn nodes(&self) -> usize {
        self.local_vts.len()
    }

    /// The snapshot a batch of `stream` at `ts` must be tagged with, or
    /// `None` if injection must stall for the next plan (Fig. 11).
    pub fn snapshot_for(&self, stream: usize, ts: Timestamp) -> Option<SnapshotId> {
        self.planner.snapshot_for(stream, ts)
    }

    /// The snapshot assigned to `stream`'s epoch covering `ts`, across
    /// the whole plan history — the snapshot a window ending at `ts`
    /// executes at, no matter how long a fault delayed its firing.
    pub fn snapshot_at(&self, stream: usize, ts: Timestamp) -> Option<SnapshotId> {
        self.planner.snapshot_at(stream, ts)
    }

    /// Reports that `node` finished inserting `stream`'s batch `ts`.
    pub fn on_batch_inserted(
        &mut self,
        node: usize,
        stream: usize,
        ts: Timestamp,
    ) -> CoordinatorEvent {
        self.local_vts[node].advance(stream, ts);
        self.refresh()
    }

    fn refresh(&mut self) -> CoordinatorEvent {
        self.stable_vts = Vts::stable(self.local_vts.iter());
        let new_stable_sn = self.planner.on_vts_update(&self.local_vts);
        CoordinatorEvent {
            new_stable_sn,
            consolidate_upto: new_stable_sn.and_then(|_| self.planner.consolidation_horizon()),
        }
    }

    /// Advances every node's local VTS entry for `stream` to `ts` at
    /// once: the adaptor coalesced a quiet gap, so every grid point
    /// through `ts` holds a vacuously-inserted empty batch (a no-op on
    /// every node). Retires any SN-VTS mapping stranded inside the gap
    /// — without this, `snapshot_for` would stall the stream's next real
    /// batch forever behind targets no batch will ever reach.
    pub fn advance_gap(&mut self, stream: usize, ts: Timestamp) -> CoordinatorEvent {
        for v in &mut self.local_vts {
            v.advance(stream, ts);
        }
        self.refresh()
    }

    /// Whether `node` already inserted `stream`'s batch at `ts` — the
    /// per-node duplicate check of at-least-once delivery: a redelivered
    /// batch must skip nodes whose local VTS already covers it, even
    /// while another node's outage keeps the *stable* VTS below `ts`.
    pub fn already_inserted(&self, node: usize, stream: usize, ts: Timestamp) -> bool {
        ts > crate::vts::NEVER && self.local_vts[node].get(stream) >= ts
    }

    /// The stable vector timestamp (continuous-query visibility).
    pub fn stable_vts(&self) -> &Vts {
        &self.stable_vts
    }

    /// The stable VTS and stable SN as one atomic pair — the visibility
    /// snapshot parallel firing takes *once* per round, so worker tasks
    /// read no coordinator state (and cannot observe it mid-update).
    pub fn visibility(&self) -> (Vts, SnapshotId) {
        (self.stable_vts.clone(), self.planner.stable_sn())
    }

    /// A node's local vector timestamp.
    pub fn local_vts(&self, node: usize) -> &Vts {
        &self.local_vts[node]
    }

    /// The stable snapshot number (one-shot query visibility).
    pub fn stable_sn(&self) -> SnapshotId {
        self.planner.stable_sn()
    }

    /// Restores the coordinator's VTS state after recovery (§5, fault
    /// tolerance: "the local and stable vector timestamps should also be
    /// persistent").
    pub fn restore(&mut self, local_vts: Vec<Vts>) {
        assert_eq!(local_vts.len(), self.local_vts.len(), "node count changed");
        self.local_vts = local_vts;
        self.refresh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_single_stream_progression() {
        let mut c = Coordinator::new(1, vec![100], StalenessBound(1));
        assert_eq!(c.stable_sn(), SnapshotId::BASE);
        assert_eq!(c.snapshot_for(0, 100), Some(SnapshotId(1)));

        let ev = c.on_batch_inserted(0, 0, 100);
        assert_eq!(ev.new_stable_sn, Some(SnapshotId(1)));
        assert_eq!(ev.consolidate_upto, Some(SnapshotId(0)));
        assert_eq!(c.stable_vts().get(0), 100);
        assert_eq!(c.snapshot_for(0, 200), Some(SnapshotId(2)));
    }

    #[test]
    fn stable_waits_for_slowest_node() {
        let mut c = Coordinator::new(2, vec![100], StalenessBound(1));
        let ev = c.on_batch_inserted(0, 0, 100);
        assert_eq!(ev.new_stable_sn, None);
        assert_eq!(c.stable_vts().get(0), 0);

        let ev = c.on_batch_inserted(1, 0, 100);
        assert_eq!(ev.new_stable_sn, Some(SnapshotId(1)));
        assert_eq!(c.stable_vts().get(0), 100);
    }

    #[test]
    fn injector_stalls_beyond_plan() {
        let c = Coordinator::new(1, vec![100], StalenessBound(1));
        // Only SN 1 (target 100) announced; batch 200 must stall.
        assert_eq!(c.snapshot_for(0, 200), None);
    }

    #[test]
    fn multi_stream_stable_sn_requires_both() {
        let mut c = Coordinator::new(1, vec![100, 50], StalenessBound(1));
        // SN 1 targets [100, 50].
        let ev = c.on_batch_inserted(0, 0, 100);
        assert_eq!(ev.new_stable_sn, None);
        let ev = c.on_batch_inserted(0, 1, 50);
        assert_eq!(ev.new_stable_sn, Some(SnapshotId(1)));
    }

    #[test]
    fn dynamic_stream_addition() {
        let mut c = Coordinator::new(1, vec![100], StalenessBound(1));
        c.on_batch_inserted(0, 0, 100);
        let s = c.add_stream(50);
        assert_eq!(s, 1);
        assert_eq!(c.streams(), 2);
        // The new stream participates in consistency immediately: SN 2
        // retires only once it catches up too.
        c.on_batch_inserted(0, 0, 200);
        assert_eq!(c.stable_sn(), SnapshotId(1));
        c.on_batch_inserted(0, 1, 50);
        assert!(c.stable_sn() >= SnapshotId(2));
    }

    #[test]
    fn already_inserted_tracks_local_not_stable() {
        let mut c = Coordinator::new(2, vec![100], StalenessBound(1));
        c.on_batch_inserted(0, 0, 100);
        // Node 1 never reported: stable stalls at 0, but node 0 must
        // still recognise a redelivery of batch 100.
        assert_eq!(c.stable_vts().get(0), 0);
        assert!(c.already_inserted(0, 0, 100));
        assert!(!c.already_inserted(1, 0, 100));
        // ts 0 is the NEVER sentinel, never "already inserted".
        assert!(!c.already_inserted(0, 0, 0));
    }

    #[test]
    fn restore_recomputes_stable() {
        let mut c = Coordinator::new(2, vec![100], StalenessBound(1));
        c.restore(vec![
            Vts::from_entries(vec![300]),
            Vts::from_entries(vec![200]),
        ]);
        assert_eq!(c.stable_vts().get(0), 200);
    }
}
