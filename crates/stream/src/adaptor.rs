//! The per-stream Adaptor (§3, Fig. 5).
//!
//! The Adaptor "uses a batch-based model that groups tuples by individual
//! timestamps … similar to mini-batches of small time intervals in Spark
//! Streaming. During the batching process, the Adaptor will also discard
//! unrelated tuples and indicate whether each tuple is timing or
//! timeless."

use std::collections::HashSet;
use wukong_obs::BatchId;
use wukong_rdf::{Pid, StreamId, StreamTuple, Timestamp, Triple, TupleKind};

/// Static description of a stream's content.
#[derive(Debug, Clone)]
pub struct StreamSchema {
    /// The stream's engine-wide identifier.
    pub id: StreamId,
    /// Human name (`Tweet_Stream`).
    pub name: String,
    /// Predicates whose tuples are *timing* data (GPS positions, sensor
    /// readings); everything else is timeless.
    pub timing_predicates: HashSet<Pid>,
    /// Predicates any registered query can use; `None` keeps everything.
    pub relevant_predicates: Option<HashSet<Pid>>,
    /// Mini-batch interval, ms.
    pub batch_interval_ms: u64,
}

impl StreamSchema {
    /// A schema keeping every predicate, all timeless.
    pub fn timeless(id: StreamId, name: impl Into<String>, batch_interval_ms: u64) -> Self {
        StreamSchema {
            id,
            name: name.into(),
            timing_predicates: HashSet::new(),
            relevant_predicates: None,
            batch_interval_ms,
        }
    }
}

/// FNV-1a over a tuple slice's logical 33-byte encoding (s, p, o,
/// timestamp, kind). Any single-bit difference between two equal-length
/// payloads changes the hash — each step is xor-then-multiply-by-odd,
/// both bijections on `u64` — so a flipped bit anywhere between sealing
/// and install is always detected (DESIGN.md §13).
pub fn payload_checksum(tuples: &[StreamTuple]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut byte = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    };
    for t in tuples {
        for word in [t.triple.s.0, t.triple.p.0, t.triple.o.0, t.timestamp] {
            for b in word.to_le_bytes() {
                byte(b);
            }
        }
        byte(if t.is_timeless() { 0 } else { 1 });
    }
    h
}

/// One mini-batch of classified tuples.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The stream this batch belongs to.
    pub stream: StreamId,
    /// Batch timestamp: the *end* of its interval, so a window `[lo, hi]`
    /// covers the batch iff `lo <= timestamp <= hi`.
    pub timestamp: Timestamp,
    /// Classified tuples.
    pub tuples: Vec<StreamTuple>,
    /// Tuples dropped as irrelevant (accounting).
    pub discarded: usize,
    /// [`payload_checksum`] of `tuples`, set when the batch is sealed
    /// and re-verified at the engine boundary before any install.
    pub checksum: u64,
}

impl Batch {
    /// Builds a batch with its payload checksum sealed in.
    pub fn sealed(
        stream: StreamId,
        timestamp: Timestamp,
        tuples: Vec<StreamTuple>,
        discarded: usize,
    ) -> Batch {
        let checksum = payload_checksum(&tuples);
        Batch {
            stream,
            timestamp,
            tuples,
            discarded,
            checksum,
        }
    }

    /// Recomputes the checksum after a legitimate in-engine mutation of
    /// `tuples` (load shedding).
    pub fn reseal(&mut self) {
        self.checksum = payload_checksum(&self.tuples);
    }

    /// Whether `tuples` still matches the sealed checksum.
    pub fn verify(&self) -> bool {
        self.checksum == payload_checksum(&self.tuples)
    }

    /// The batch's causal identity: a pure function of `(stream,
    /// timestamp)`, minted at seal time, stable across recovery replay
    /// (the same logical batch carries the same [`BatchId`] through
    /// dispatch, injection, shed logs, and trace dumps).
    pub fn id(&self) -> BatchId {
        BatchId::mint(self.stream.0, self.timestamp)
    }
    /// The timeless tuples (for the persistent store).
    pub fn timeless(&self) -> impl Iterator<Item = &StreamTuple> {
        self.tuples.iter().filter(|t| t.is_timeless())
    }

    /// The timing tuples (for the transient store).
    pub fn timing(&self) -> impl Iterator<Item = &StreamTuple> {
        self.tuples.iter().filter(|t| !t.is_timeless())
    }

    /// Raw payload size in bytes (dispatch cost accounting).
    pub fn wire_bytes(&self) -> usize {
        self.tuples.len() * std::mem::size_of::<StreamTuple>()
    }
}

/// Batches one stream's raw tuples into classified mini-batches.
#[derive(Debug)]
pub struct Adaptor {
    schema: StreamSchema,
    current: Vec<StreamTuple>,
    current_end: Timestamp,
    discarded: usize,
    clock_anomalies: usize,
    /// Coalesced quiet gaps: `(after, to)` records that once the batch
    /// ending `after` is in, every grid point through `to` is a skipped
    /// empty batch — the consumer may advance its stream clock to `to`
    /// without waiting for (never-coming) batches in between.
    clock_jumps: Vec<(Timestamp, Timestamp)>,
    /// Nanoseconds of adaptor work (windowing/sealing) accumulated since
    /// the last [`Adaptor::take_work_ns`]; the engine drains this into
    /// the per-stream `Adaptor` stage histogram.
    work_ns: u64,
}

impl Adaptor {
    /// The longest run of empty heartbeat batches one `push`/`advance_to`
    /// call may seal. A tuple whose timestamp jumps further ahead than
    /// this many intervals is a clock anomaly: without the bound, a single
    /// bad timestamp would flood the pipeline with an unbounded (and,
    /// downstream, quadratic) run of empty batches.
    pub const MAX_EMPTY_RUN: usize = 64;

    /// Creates an adaptor; the first batch covers `(0, interval]`.
    pub fn new(schema: StreamSchema) -> Self {
        let end = schema.batch_interval_ms;
        Adaptor {
            schema,
            current: Vec::new(),
            current_end: end,
            discarded: 0,
            clock_anomalies: 0,
            clock_jumps: Vec::new(),
            work_ns: 0,
        }
    }

    /// The stream's schema.
    pub fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    /// Feeds one raw tuple; returns completed batches (possibly empty
    /// ones, which keep the VTS advancing through quiet periods).
    ///
    /// Tuples must arrive in non-decreasing timestamp order (C-SPARQL's
    /// time model, §4.3); a late tuple is clamped into the current batch.
    /// A far-future timestamp (more than [`Adaptor::MAX_EMPTY_RUN`]
    /// intervals ahead — a long-idle stream or a bad clock) never
    /// rewrites the tuple: the dead interval range is coalesced by
    /// jumping the batch clock forward, a bounded heartbeat run is
    /// sealed, the tuple keeps its true timestamp in the batch covering
    /// it, and the anomaly is counted.
    pub fn push(&mut self, triple: Triple, ts: Timestamp) -> Vec<Batch> {
        let t0 = std::time::Instant::now();
        let mut out = Vec::new();
        self.bound_gap(ts, false, &mut out);
        while ts > self.current_end {
            out.push(self.seal());
        }
        if let Some(rel) = &self.schema.relevant_predicates {
            if !rel.contains(&triple.p) {
                self.discarded += 1;
                self.work_ns += t0.elapsed().as_nanos() as u64;
                return out;
            }
        }
        let kind = if self.schema.timing_predicates.contains(&triple.p) {
            TupleKind::Timing
        } else {
            TupleKind::Timeless
        };
        self.current.push(StreamTuple {
            triple,
            timestamp: ts.max(
                self.current_end
                    .saturating_sub(self.schema.batch_interval_ms),
            ),
            kind,
        });
        self.work_ns += t0.elapsed().as_nanos() as u64;
        out
    }

    /// Advances stream time to `ts`, sealing every batch that ends at or
    /// before it (heartbeat for idle streams).
    ///
    /// A jump longer than [`Adaptor::MAX_EMPTY_RUN`] intervals is counted
    /// as a clock anomaly and the dead range is coalesced by jumping the
    /// batch clock, so the call still catches up fully while sealing a
    /// bounded number of batches.
    pub fn advance_to(&mut self, ts: Timestamp) -> Vec<Batch> {
        let t0 = std::time::Instant::now();
        let mut out = Vec::new();
        self.bound_gap(ts, true, &mut out);
        while ts >= self.current_end {
            out.push(self.seal());
        }
        self.work_ns += t0.elapsed().as_nanos() as u64;
        out
    }

    /// Coalesces an over-long quiet gap before `ts`. If stepping there one
    /// interval at a time would seal more than [`Adaptor::MAX_EMPTY_RUN`]
    /// batches, seal the current batch, count the anomaly, and jump
    /// `current_end` so only a bounded heartbeat run remains up to the
    /// first on-grid batch end that can host `ts` (inclusive of `ts` for
    /// `push`, strictly past it for `advance_to`). Jumps are whole
    /// multiples of the interval, so the batch grid's phase is preserved;
    /// the VTS is a watermark, so skipping the dead batch ends is sound.
    fn bound_gap(&mut self, ts: Timestamp, inclusive: bool, out: &mut Vec<Batch>) {
        let interval = self.schema.batch_interval_ms;
        let horizon = self
            .current_end
            .saturating_add((Self::MAX_EMPTY_RUN as u64).saturating_mul(interval));
        let beyond = if inclusive {
            ts >= horizon
        } else {
            ts > horizon
        };
        if !beyond {
            return;
        }
        self.clock_anomalies += 1;
        let after = self.current_end;
        out.push(self.seal());
        let gap = ts - self.current_end;
        let steps = if inclusive {
            gap / interval + 1
        } else {
            gap.div_ceil(interval)
        };
        let end = self
            .current_end
            .saturating_add(steps.saturating_mul(interval));
        self.current_end = end.saturating_sub((Self::MAX_EMPTY_RUN as u64 - 1) * interval);
        self.clock_jumps
            .push((after, self.current_end.saturating_sub(interval)));
    }

    /// Drains the accumulated adaptor work time (nanoseconds).
    pub fn take_work_ns(&mut self) -> u64 {
        std::mem::take(&mut self.work_ns)
    }

    /// Drains the count of clock anomalies (far-future timestamp jumps
    /// coalesced into bounded heartbeat runs) since the last call; the
    /// engine folds this into its per-stream `InjectStats`.
    pub fn take_clock_anomalies(&mut self) -> usize {
        std::mem::take(&mut self.clock_anomalies)
    }

    /// Drains the coalesced clock jumps since the last call, oldest
    /// first. Each `(after, to)` pair tells the consumer that no batch
    /// will ever be sealed strictly between `after` and `to`: the gap is
    /// quiet by construction, so stream time may advance through it once
    /// the batch ending `after` has landed.
    pub fn take_clock_jumps(&mut self) -> Vec<(Timestamp, Timestamp)> {
        std::mem::take(&mut self.clock_jumps)
    }

    /// Fast-forwards the adaptor's clock past `ts` *without* emitting
    /// batches — recovery replays logged batches directly into the store,
    /// so the adaptor must resume sealing strictly after them.
    pub fn fast_forward(&mut self, ts: Timestamp) {
        debug_assert!(self.current.is_empty(), "fast-forward would drop tuples");
        let interval = self.schema.batch_interval_ms;
        while self.current_end <= ts {
            self.current_end += interval;
        }
        self.discarded = 0;
    }

    fn seal(&mut self) -> Batch {
        let b = Batch::sealed(
            self.schema.id,
            self.current_end,
            std::mem::take(&mut self.current),
            std::mem::take(&mut self.discarded),
        );
        self.current_end += self.schema.batch_interval_ms;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Pid, Vid};

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Vid(s), Pid(p), Vid(o))
    }

    fn schema() -> StreamSchema {
        StreamSchema {
            id: StreamId(0),
            name: "Tweet_Stream".into(),
            timing_predicates: [Pid(9)].into_iter().collect(),
            relevant_predicates: Some([Pid(4), Pid(9)].into_iter().collect()),
            batch_interval_ms: 100,
        }
    }

    #[test]
    fn batches_by_interval() {
        let mut a = Adaptor::new(schema());
        assert!(a.push(t(1, 4, 2), 50).is_empty());
        assert!(a.push(t(1, 4, 3), 100).is_empty()); // boundary inclusive
        let sealed = a.push(t(1, 4, 4), 150);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].timestamp, 100);
        assert_eq!(sealed[0].tuples.len(), 2);
    }

    #[test]
    fn classifies_timing_vs_timeless() {
        let mut a = Adaptor::new(schema());
        a.push(t(1, 4, 2), 10);
        a.push(t(1, 9, 3), 20);
        let b = &a.advance_to(100)[0];
        assert_eq!(b.timeless().count(), 1);
        assert_eq!(b.timing().count(), 1);
    }

    #[test]
    fn discards_irrelevant_predicates() {
        let mut a = Adaptor::new(schema());
        a.push(t(1, 7, 2), 10); // predicate 7 not relevant
        a.push(t(1, 4, 2), 20);
        let b = &a.advance_to(100)[0];
        assert_eq!(b.tuples.len(), 1);
        assert_eq!(b.discarded, 1);
    }

    #[test]
    fn quiet_stream_emits_empty_batches() {
        let mut a = Adaptor::new(schema());
        let batches = a.advance_to(300);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.tuples.is_empty()));
        assert_eq!(batches[2].timestamp, 300);
    }

    #[test]
    fn fast_forward_skips_without_emitting() {
        let mut a = Adaptor::new(schema());
        a.fast_forward(750);
        // Sealing resumes at the next boundary after 750.
        assert!(a.push(t(1, 4, 2), 790).is_empty());
        let sealed = a.advance_to(800);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].timestamp, 800);
        assert_eq!(sealed[0].tuples.len(), 1);
    }

    #[test]
    fn gap_in_tuples_seals_intermediate_batches() {
        let mut a = Adaptor::new(schema());
        a.push(t(1, 4, 2), 10);
        let sealed = a.push(t(1, 4, 3), 450);
        assert_eq!(sealed.len(), 4); // batches ending 100..400
        assert_eq!(sealed[0].tuples.len(), 1);
        assert!(sealed[1..].iter().all(|b| b.tuples.is_empty()));
        assert_eq!(a.take_clock_anomalies(), 0);
    }

    #[test]
    fn far_future_push_is_bounded_and_counted() {
        // A tuple far ahead of stream time (long-idle stream or a bad
        // clock) must not seal an unbounded run of empty batches — but it
        // must also keep its true timestamp. The dead range is coalesced
        // by jumping the batch clock; the sealed run is capped at
        // MAX_EMPTY_RUN and the anomaly is counted.
        let far = 1_000_000; // 10_000 intervals ahead, on-grid
        let mut a = Adaptor::new(schema());
        a.push(t(1, 4, 2), 10);
        let sealed = a.push(t(1, 4, 3), far);
        assert_eq!(sealed.len(), Adaptor::MAX_EMPTY_RUN);
        assert_eq!(sealed[0].tuples.len(), 1);
        assert!(sealed[1..].iter().all(|b| b.tuples.is_empty()));
        assert_eq!(a.take_clock_anomalies(), 1);
        assert_eq!(a.take_clock_anomalies(), 0, "drained");
        // The tuple lives — unre-stamped — in the batch covering `far`.
        let next = a.advance_to(far);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].timestamp, far);
        assert_eq!(next[0].tuples.len(), 1);
        assert_eq!(next[0].tuples[0].timestamp, far);
        // Stream time keeps flowing normally afterwards.
        assert!(a.push(t(1, 4, 4), far + 50).is_empty());
        // An absurd jump (overflow territory) stays bounded too.
        let huge = a.push(t(1, 4, 5), u64::MAX / 2);
        assert!(huge.len() <= Adaptor::MAX_EMPTY_RUN + 1);
        assert_eq!(a.take_clock_anomalies(), 1);
    }

    #[test]
    fn heartbeat_advance_is_bounded_per_call() {
        let mut a = Adaptor::new(schema());
        let far = 1_000_000; // 10_000 intervals ahead
        let first = a.advance_to(far);
        assert_eq!(first.len(), Adaptor::MAX_EMPTY_RUN);
        assert_eq!(first.last().expect("non-empty").timestamp, far);
        assert_eq!(a.take_clock_anomalies(), 1);
        // The stream caught up in that one bounded call: re-advancing to
        // the same point emits nothing and counts nothing.
        assert!(a.advance_to(far).is_empty());
        assert_eq!(a.take_clock_anomalies(), 0);
        // Normal heartbeat flow resumes on the preserved batch grid.
        let next = a.advance_to(far + 100);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].timestamp, far + 100);
    }
}
