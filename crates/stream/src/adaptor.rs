//! The per-stream Adaptor (§3, Fig. 5).
//!
//! The Adaptor "uses a batch-based model that groups tuples by individual
//! timestamps … similar to mini-batches of small time intervals in Spark
//! Streaming. During the batching process, the Adaptor will also discard
//! unrelated tuples and indicate whether each tuple is timing or
//! timeless."

use std::collections::HashSet;
use wukong_rdf::{Pid, StreamId, StreamTuple, Timestamp, Triple, TupleKind};

/// Static description of a stream's content.
#[derive(Debug, Clone)]
pub struct StreamSchema {
    /// The stream's engine-wide identifier.
    pub id: StreamId,
    /// Human name (`Tweet_Stream`).
    pub name: String,
    /// Predicates whose tuples are *timing* data (GPS positions, sensor
    /// readings); everything else is timeless.
    pub timing_predicates: HashSet<Pid>,
    /// Predicates any registered query can use; `None` keeps everything.
    pub relevant_predicates: Option<HashSet<Pid>>,
    /// Mini-batch interval, ms.
    pub batch_interval_ms: u64,
}

impl StreamSchema {
    /// A schema keeping every predicate, all timeless.
    pub fn timeless(id: StreamId, name: impl Into<String>, batch_interval_ms: u64) -> Self {
        StreamSchema {
            id,
            name: name.into(),
            timing_predicates: HashSet::new(),
            relevant_predicates: None,
            batch_interval_ms,
        }
    }
}

/// One mini-batch of classified tuples.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The stream this batch belongs to.
    pub stream: StreamId,
    /// Batch timestamp: the *end* of its interval, so a window `[lo, hi]`
    /// covers the batch iff `lo <= timestamp <= hi`.
    pub timestamp: Timestamp,
    /// Classified tuples.
    pub tuples: Vec<StreamTuple>,
    /// Tuples dropped as irrelevant (accounting).
    pub discarded: usize,
}

impl Batch {
    /// The timeless tuples (for the persistent store).
    pub fn timeless(&self) -> impl Iterator<Item = &StreamTuple> {
        self.tuples.iter().filter(|t| t.is_timeless())
    }

    /// The timing tuples (for the transient store).
    pub fn timing(&self) -> impl Iterator<Item = &StreamTuple> {
        self.tuples.iter().filter(|t| !t.is_timeless())
    }

    /// Raw payload size in bytes (dispatch cost accounting).
    pub fn wire_bytes(&self) -> usize {
        self.tuples.len() * std::mem::size_of::<StreamTuple>()
    }
}

/// Batches one stream's raw tuples into classified mini-batches.
#[derive(Debug)]
pub struct Adaptor {
    schema: StreamSchema,
    current: Vec<StreamTuple>,
    current_end: Timestamp,
    discarded: usize,
    /// Nanoseconds of adaptor work (windowing/sealing) accumulated since
    /// the last [`Adaptor::take_work_ns`]; the engine drains this into
    /// the per-stream `Adaptor` stage histogram.
    work_ns: u64,
}

impl Adaptor {
    /// Creates an adaptor; the first batch covers `(0, interval]`.
    pub fn new(schema: StreamSchema) -> Self {
        let end = schema.batch_interval_ms;
        Adaptor {
            schema,
            current: Vec::new(),
            current_end: end,
            discarded: 0,
            work_ns: 0,
        }
    }

    /// The stream's schema.
    pub fn schema(&self) -> &StreamSchema {
        &self.schema
    }

    /// Feeds one raw tuple; returns completed batches (possibly empty
    /// ones, which keep the VTS advancing through quiet periods).
    ///
    /// Tuples must arrive in non-decreasing timestamp order (C-SPARQL's
    /// time model, §4.3); a late tuple is clamped into the current batch.
    pub fn push(&mut self, triple: Triple, ts: Timestamp) -> Vec<Batch> {
        let t0 = std::time::Instant::now();
        let mut out = Vec::new();
        while ts > self.current_end {
            out.push(self.seal());
        }
        if let Some(rel) = &self.schema.relevant_predicates {
            if !rel.contains(&triple.p) {
                self.discarded += 1;
                self.work_ns += t0.elapsed().as_nanos() as u64;
                return out;
            }
        }
        let kind = if self.schema.timing_predicates.contains(&triple.p) {
            TupleKind::Timing
        } else {
            TupleKind::Timeless
        };
        self.current.push(StreamTuple {
            triple,
            timestamp: ts.max(
                self.current_end
                    .saturating_sub(self.schema.batch_interval_ms),
            ),
            kind,
        });
        self.work_ns += t0.elapsed().as_nanos() as u64;
        out
    }

    /// Advances stream time to `ts`, sealing every batch that ends at or
    /// before it (heartbeat for idle streams).
    pub fn advance_to(&mut self, ts: Timestamp) -> Vec<Batch> {
        let t0 = std::time::Instant::now();
        let mut out = Vec::new();
        while ts >= self.current_end {
            out.push(self.seal());
        }
        self.work_ns += t0.elapsed().as_nanos() as u64;
        out
    }

    /// Drains the accumulated adaptor work time (nanoseconds).
    pub fn take_work_ns(&mut self) -> u64 {
        std::mem::take(&mut self.work_ns)
    }

    /// Fast-forwards the adaptor's clock past `ts` *without* emitting
    /// batches — recovery replays logged batches directly into the store,
    /// so the adaptor must resume sealing strictly after them.
    pub fn fast_forward(&mut self, ts: Timestamp) {
        debug_assert!(self.current.is_empty(), "fast-forward would drop tuples");
        let interval = self.schema.batch_interval_ms;
        while self.current_end <= ts {
            self.current_end += interval;
        }
        self.discarded = 0;
    }

    fn seal(&mut self) -> Batch {
        let b = Batch {
            stream: self.schema.id,
            timestamp: self.current_end,
            tuples: std::mem::take(&mut self.current),
            discarded: std::mem::take(&mut self.discarded),
        };
        self.current_end += self.schema.batch_interval_ms;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Pid, Vid};

    fn t(s: u64, p: u64, o: u64) -> Triple {
        Triple::new(Vid(s), Pid(p), Vid(o))
    }

    fn schema() -> StreamSchema {
        StreamSchema {
            id: StreamId(0),
            name: "Tweet_Stream".into(),
            timing_predicates: [Pid(9)].into_iter().collect(),
            relevant_predicates: Some([Pid(4), Pid(9)].into_iter().collect()),
            batch_interval_ms: 100,
        }
    }

    #[test]
    fn batches_by_interval() {
        let mut a = Adaptor::new(schema());
        assert!(a.push(t(1, 4, 2), 50).is_empty());
        assert!(a.push(t(1, 4, 3), 100).is_empty()); // boundary inclusive
        let sealed = a.push(t(1, 4, 4), 150);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].timestamp, 100);
        assert_eq!(sealed[0].tuples.len(), 2);
    }

    #[test]
    fn classifies_timing_vs_timeless() {
        let mut a = Adaptor::new(schema());
        a.push(t(1, 4, 2), 10);
        a.push(t(1, 9, 3), 20);
        let b = &a.advance_to(100)[0];
        assert_eq!(b.timeless().count(), 1);
        assert_eq!(b.timing().count(), 1);
    }

    #[test]
    fn discards_irrelevant_predicates() {
        let mut a = Adaptor::new(schema());
        a.push(t(1, 7, 2), 10); // predicate 7 not relevant
        a.push(t(1, 4, 2), 20);
        let b = &a.advance_to(100)[0];
        assert_eq!(b.tuples.len(), 1);
        assert_eq!(b.discarded, 1);
    }

    #[test]
    fn quiet_stream_emits_empty_batches() {
        let mut a = Adaptor::new(schema());
        let batches = a.advance_to(300);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.tuples.is_empty()));
        assert_eq!(batches[2].timestamp, 300);
    }

    #[test]
    fn fast_forward_skips_without_emitting() {
        let mut a = Adaptor::new(schema());
        a.fast_forward(750);
        // Sealing resumes at the next boundary after 750.
        assert!(a.push(t(1, 4, 2), 790).is_empty());
        let sealed = a.advance_to(800);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].timestamp, 800);
        assert_eq!(sealed[0].tuples.len(), 1);
    }

    #[test]
    fn gap_in_tuples_seals_intermediate_batches() {
        let mut a = Adaptor::new(schema());
        a.push(t(1, 4, 2), 10);
        let sealed = a.push(t(1, 4, 3), 450);
        assert_eq!(sealed.len(), 4); // batches ending 100..400
        assert_eq!(sealed[0].tuples.len(), 1);
        assert!(sealed[1..].iter().all(|b| b.tuples.is_empty()));
    }
}
