//! Bounded ingest: deterministic load shedding with exact accounting.
//!
//! The adaptor→dispatcher→injector pipeline is pull-through: whatever a
//! burst produces, the engine enqueues. Under a sustained rate spike that
//! turns sub-millisecond firings into unbounded queueing — the failure
//! mode the RSP measurement studies report for C-SPARQL/CQELS. The
//! [`Shedder`] bounds the pending queue of each stream by an
//! [`IngestBudget`] and, when a freshly enqueued batch overflows it,
//! drops tuples under a deterministic [`ShedPolicy`]:
//!
//! * **Drop-oldest-window** empties the oldest still-pending batches
//!   (the tuples a query is *least* likely to still need) until the
//!   queue fits. The emptied batches stay in the queue so the VTS keeps
//!   advancing — shedding degrades answers, never liveness.
//! * **Sample-within-batch** thins the newest batches by keeping a
//!   seeded pseudo-random half of their tuples per round, preserving a
//!   uniform sample of the burst instead of a time prefix.
//!
//! Both policies decide from *deterministic* state only — queue
//! occupancy, batch timestamps, the configured seed — never from
//! wall-clock measurements, so the shed log and every downstream
//! `degraded` marker are byte-identical across runs and worker counts.
//!
//! Exact accounting: every shed tuple is (a) counted in an append-only
//! [`ShedRecord`] log, (b) summed per `(stream, batch timestamp)` so
//! firings whose windows consumed a shed-affected batch can carry a
//! precise `degraded` marker, and (c) retained verbatim for the
//! catch-up replay that re-inserts it once overload subsides.

use std::collections::{BTreeMap, VecDeque};

use wukong_obs::BatchId;
use wukong_rdf::{StreamId, StreamTuple, Timestamp};

use crate::adaptor::Batch;

/// Per-stream bound on pending (enqueued but not yet injected) data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestBudget {
    /// Maximum pending tuples per stream.
    pub max_tuples: usize,
    /// Maximum pending wire bytes per stream.
    pub max_bytes: usize,
}

impl IngestBudget {
    /// A budget bounding tuples only.
    pub fn tuples(max_tuples: usize) -> Self {
        IngestBudget {
            max_tuples,
            max_bytes: usize::MAX,
        }
    }

    fn fits(&self, tuples: usize, bytes: usize) -> bool {
        tuples <= self.max_tuples && bytes <= self.max_bytes
    }
}

/// Which deterministic shed policy a full queue applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Empty the oldest pending batches until the queue fits.
    #[default]
    DropOldestWindow,
    /// Keep a seeded pseudo-random half of the newest batches' tuples
    /// per round until the queue fits.
    SampleWithinBatch,
}

/// One shed event: `tuples_shed` tuples dropped from the batch of
/// `stream` at `batch_ts`. The log of these is the determinism witness —
/// same seed, same spike ⇒ byte-identical logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedRecord {
    /// The stream shed from.
    pub stream: StreamId,
    /// Timestamp of the batch the tuples were dropped from.
    pub batch_ts: Timestamp,
    /// Causal identity of the batch the tuples were dropped from, so
    /// shed events are joinable against flight-recorder traces.
    pub batch: BatchId,
    /// Tuples dropped by this event.
    pub tuples_shed: u64,
    /// The policy that dropped them.
    pub policy: ShedPolicy,
}

/// SplitMix64 — the same generator family as the offline `rand` shim;
/// used to pick sample survivors as a pure function of
/// `(seed, stream, batch_ts, round, index)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic load shedder: policy, seed, shed log, per-batch
/// outstanding-shed accounting, and the retained tuples for catch-up.
#[derive(Debug)]
pub struct Shedder {
    policy: ShedPolicy,
    seed: u64,
    log: Vec<ShedRecord>,
    /// Tuples shed and not yet replayed, per `(stream, batch_ts)` —
    /// the source of `degraded` markers.
    outstanding: BTreeMap<(StreamId, Timestamp), u64>,
    /// The shed tuples themselves, keyed for time-ordered replay.
    retained: BTreeMap<(Timestamp, StreamId), Vec<StreamTuple>>,
    last_shed_ts: Option<Timestamp>,
}

impl Shedder {
    /// Creates a shedder applying `policy` with sampling seed `seed`.
    pub fn new(policy: ShedPolicy, seed: u64) -> Self {
        Shedder {
            policy,
            seed,
            log: Vec::new(),
            outstanding: BTreeMap::new(),
            retained: BTreeMap::new(),
            last_shed_ts: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> ShedPolicy {
        self.policy
    }

    /// Enforces `budget` over one stream's pending queue, shedding under
    /// the configured policy until the queue fits. Emptied batches stay
    /// queued (liveness: the VTS must keep advancing). Returns the
    /// number of tuples shed by this call.
    pub fn enforce(&mut self, queue: &mut VecDeque<Batch>, budget: &IngestBudget) -> u64 {
        let occupancy = |q: &VecDeque<Batch>| {
            q.iter().fold((0usize, 0usize), |(t, b), batch| {
                (t + batch.tuples.len(), b + batch.wire_bytes())
            })
        };
        let (mut tuples, mut bytes) = occupancy(queue);
        if budget.fits(tuples, bytes) {
            return 0;
        }
        let mut shed_total = 0u64;
        match self.policy {
            ShedPolicy::DropOldestWindow => {
                let mut drops = Vec::new();
                for batch in queue.iter_mut() {
                    if budget.fits(tuples, bytes) {
                        break;
                    }
                    if batch.tuples.is_empty() {
                        continue;
                    }
                    let dropped = std::mem::take(&mut batch.tuples);
                    batch.reseal();
                    tuples -= dropped.len();
                    bytes -= dropped.len() * std::mem::size_of::<StreamTuple>();
                    drops.push((batch.stream, batch.timestamp, dropped));
                }
                for (stream, ts, dropped) in drops {
                    shed_total += self.record(stream, ts, dropped);
                }
            }
            ShedPolicy::SampleWithinBatch => {
                let mut round = 0u64;
                while !budget.fits(tuples, bytes) {
                    let Some(i) = (0..queue.len())
                        .rev()
                        .find(|&i| !queue[i].tuples.is_empty())
                    else {
                        break;
                    };
                    let batch = &mut queue[i];
                    let (stream, ts) = (batch.stream, batch.timestamp);
                    let base = self
                        .seed
                        .wrapping_add((stream.0 as u64) << 48)
                        .wrapping_add(ts.wrapping_mul(0x9E37))
                        .wrapping_add(round);
                    let mut kept = Vec::with_capacity(batch.tuples.len() / 2 + 1);
                    let mut dropped = Vec::with_capacity(batch.tuples.len() / 2 + 1);
                    for (idx, t) in batch.tuples.drain(..).enumerate() {
                        if splitmix64(base.wrapping_add(idx as u64)) & 1 == 0 {
                            dropped.push(t);
                        } else {
                            kept.push(t);
                        }
                    }
                    // Degenerate masks (tiny batches) could drop nothing
                    // and loop forever; force progress.
                    if dropped.is_empty() {
                        dropped = std::mem::take(&mut kept);
                    }
                    tuples -= dropped.len();
                    bytes -= dropped.len() * std::mem::size_of::<StreamTuple>();
                    batch.tuples = kept;
                    batch.reseal();
                    shed_total += self.record(stream, ts, dropped);
                    round += 1;
                }
            }
        }
        shed_total
    }

    fn record(&mut self, stream: StreamId, batch_ts: Timestamp, dropped: Vec<StreamTuple>) -> u64 {
        let n = dropped.len() as u64;
        if n == 0 {
            return 0;
        }
        self.log.push(ShedRecord {
            stream,
            batch_ts,
            batch: BatchId::mint(stream.0, batch_ts),
            tuples_shed: n,
            policy: self.policy,
        });
        *self.outstanding.entry((stream, batch_ts)).or_insert(0) += n;
        self.retained
            .entry((batch_ts, stream))
            .or_default()
            .extend(dropped);
        self.last_shed_ts = Some(self.last_shed_ts.map_or(batch_ts, |t| t.max(batch_ts)));
        n
    }

    /// The append-only shed log (never cleared by replay).
    pub fn log(&self) -> &[ShedRecord] {
        &self.log
    }

    /// Total tuples shed over the whole run.
    pub fn total_shed(&self) -> u64 {
        self.log.iter().map(|r| r.tuples_shed).sum()
    }

    /// Tuples shed from `stream`'s batches inside `[lo, hi]` and not yet
    /// replayed — the staleness a firing over that window must declare.
    pub fn outstanding_in(&self, stream: StreamId, lo: Timestamp, hi: Timestamp) -> u64 {
        self.outstanding
            .range((stream, lo)..=(stream, hi))
            .map(|(_, n)| n)
            .sum()
    }

    /// Total shed tuples not yet replayed.
    pub fn outstanding_total(&self) -> u64 {
        self.outstanding.values().sum()
    }

    /// Whether any shed tuples await catch-up replay.
    pub fn has_retained(&self) -> bool {
        !self.retained.is_empty()
    }

    /// The latest batch timestamp a shed touched, if any.
    pub fn last_shed_ts(&self) -> Option<Timestamp> {
        self.last_shed_ts
    }

    /// Takes every retained tuple for catch-up replay, in `(timestamp,
    /// stream)` order, clearing the outstanding-shed accounting — after
    /// the caller re-inserts these, affected windows are whole again and
    /// must stop carrying `degraded` markers.
    pub fn take_retained(&mut self) -> Vec<(StreamId, Timestamp, Vec<StreamTuple>)> {
        self.outstanding.clear();
        std::mem::take(&mut self.retained)
            .into_iter()
            .map(|((ts, stream), tuples)| (stream, ts, tuples))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_rdf::{Pid, Triple, TupleKind, Vid};

    fn batch(stream: u16, ts: Timestamp, n: usize) -> Batch {
        Batch::sealed(
            StreamId(stream),
            ts,
            (0..n)
                .map(|i| StreamTuple {
                    triple: Triple::new(Vid(i as u64 + 1), Pid(4), Vid(ts)),
                    timestamp: ts,
                    kind: TupleKind::Timeless,
                })
                .collect(),
            0,
        )
    }

    #[test]
    fn enforce_reseals_mutated_batches() {
        for policy in [ShedPolicy::DropOldestWindow, ShedPolicy::SampleWithinBatch] {
            let mut s = Shedder::new(policy, 42);
            let mut q: VecDeque<Batch> = (1..=4).map(|i| batch(0, i * 100, 8)).collect();
            assert!(s.enforce(&mut q, &IngestBudget::tuples(10)) > 0);
            for b in &q {
                assert!(
                    b.verify(),
                    "{policy:?} left a shed batch with a stale checksum"
                );
            }
        }
    }

    #[test]
    fn under_budget_is_untouched() {
        let mut s = Shedder::new(ShedPolicy::DropOldestWindow, 42);
        let mut q: VecDeque<Batch> = [batch(0, 100, 5)].into_iter().collect();
        assert_eq!(s.enforce(&mut q, &IngestBudget::tuples(10)), 0);
        assert_eq!(q[0].tuples.len(), 5);
        assert!(s.log().is_empty());
        assert!(!s.has_retained());
    }

    #[test]
    fn drop_oldest_empties_front_batches_but_keeps_them_queued() {
        let mut s = Shedder::new(ShedPolicy::DropOldestWindow, 42);
        let mut q: VecDeque<Batch> = [batch(0, 100, 8), batch(0, 200, 8), batch(0, 300, 4)]
            .into_iter()
            .collect();
        let shed = s.enforce(&mut q, &IngestBudget::tuples(10));
        assert_eq!(shed, 16);
        assert_eq!(q.len(), 3, "emptied batches stay queued for VTS");
        assert!(q[0].tuples.is_empty());
        assert!(q[1].tuples.is_empty());
        assert_eq!(q[2].tuples.len(), 4);
        assert_eq!(s.outstanding_in(StreamId(0), 0, 250), 16);
        assert_eq!(s.outstanding_in(StreamId(0), 250, 999), 0);
        assert_eq!(s.log().len(), 2);
    }

    #[test]
    fn sampling_thins_newest_and_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut s = Shedder::new(ShedPolicy::SampleWithinBatch, seed);
            let mut q: VecDeque<Batch> =
                [batch(0, 100, 4), batch(0, 200, 60)].into_iter().collect();
            s.enforce(&mut q, &IngestBudget::tuples(24));
            (
                s.log().to_vec(),
                q.iter().map(|b| b.tuples.clone()).collect::<Vec<_>>(),
            )
        };
        let (log_a, q_a) = run(7);
        let (log_b, q_b) = run(7);
        assert_eq!(log_a, log_b, "same seed ⇒ identical shed log");
        assert_eq!(q_a, q_b, "same seed ⇒ identical survivors");
        let (log_c, _) = run(8);
        assert!(
            log_a != log_c || run(7).1 != run(8).1,
            "different seeds should differ somewhere"
        );
        // The newest batch was thinned first; the oldest only if needed.
        let total: usize = q_a.iter().map(Vec::len).sum();
        assert!(total <= 24);
    }

    #[test]
    fn retained_tuples_round_trip_and_clear_outstanding() {
        let mut s = Shedder::new(ShedPolicy::DropOldestWindow, 1);
        let mut q: VecDeque<Batch> = [batch(1, 100, 6), batch(1, 200, 6)].into_iter().collect();
        s.enforce(&mut q, &IngestBudget::tuples(0));
        assert_eq!(s.outstanding_total(), 12);
        let retained = s.take_retained();
        assert_eq!(retained.len(), 2);
        assert_eq!(retained[0].1, 100);
        assert_eq!(retained[1].1, 200);
        assert_eq!(retained.iter().map(|(_, _, t)| t.len()).sum::<usize>(), 12);
        assert_eq!(s.outstanding_total(), 0, "replay clears markers");
        assert_eq!(s.log().len(), 2, "the log is append-only history");
        assert!(!s.has_retained());
    }

    #[test]
    fn accounting_identity_holds_per_policy() {
        for policy in [ShedPolicy::DropOldestWindow, ShedPolicy::SampleWithinBatch] {
            let mut s = Shedder::new(policy, 5);
            let mut q: VecDeque<Batch> =
                [batch(0, 100, 31), batch(0, 200, 17)].into_iter().collect();
            let before: usize = q.iter().map(|b| b.tuples.len()).sum();
            let shed = s.enforce(&mut q, &IngestBudget::tuples(20));
            let after: usize = q.iter().map(|b| b.tuples.len()).sum();
            assert_eq!(before, after + shed as usize, "{policy:?}");
            assert!(after <= 20, "{policy:?}");
            assert_eq!(s.total_shed(), shed, "{policy:?}");
            assert_eq!(s.outstanding_total(), shed, "{policy:?}");
        }
    }
}
