//! Bounded snapshot scalarization (§4.3, Fig. 11).
//!
//! The coordinator announces a *SN-VTS plan*: a mapping from each scalar
//! snapshot number to the vector timestamp its snapshot must reach (e.g.
//! `SN=3:[S0=5,S1=12]`). Injectors tag every batch with the smallest
//! announced snapshot whose target VTS covers the batch; a node whose
//! local VTS reaches a plan's target raises its *local SN*; the stable SN
//! is the minimum local SN over nodes. The plan's step size (how far each
//! target VTS advances) trades one-shot staleness against injection
//! flexibility, and publishing a new mapping only once the current one is
//! reached bounds the per-key snapshot count at two.

use crate::vts::Vts;
use wukong_rdf::Timestamp;
use wukong_store::SnapshotId;

/// How many batches ahead of the reached VTS each new plan target lies.
///
/// `1` gives the freshest one-shot results but stalls injectors the most;
/// larger values batch more insertion per snapshot (§4.3's staleness
/// trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalenessBound(pub u64);

impl Default for StalenessBound {
    fn default() -> Self {
        StalenessBound(1)
    }
}

/// One announced mapping of the SN-VTS plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// The snapshot this mapping defines.
    pub sn: SnapshotId,
    /// The vector timestamp the snapshot must reach (inclusive).
    pub target: Vts,
}

/// The coordinator-side planner for snapshot scalarization.
#[derive(Debug)]
pub struct SnVtsPlanner {
    /// Announced, not-yet-retired mappings, oldest first.
    announced: Vec<PlanEntry>,
    /// Retired mappings, oldest first — the plan's history. Kept so a
    /// window that fires *behind* the stable SN (an outage, a recovery
    /// replay, a clock jump delayed it) can still be executed at the
    /// snapshot its window end was assigned, making firing results a
    /// pure function of the window rather than of firing time. One
    /// small entry per epoch; bounded by run length.
    retired: Vec<PlanEntry>,
    /// Batch interval per stream, in ms (targets advance by
    /// `staleness × interval`).
    intervals: Vec<u64>,
    staleness: StalenessBound,
    stable_sn: SnapshotId,
    /// Highest snapshot announced so far.
    last_announced: SnapshotId,
}

impl SnVtsPlanner {
    /// Creates a planner for streams with the given batch intervals (ms).
    pub fn new(intervals: Vec<u64>, staleness: StalenessBound) -> Self {
        SnVtsPlanner {
            announced: Vec::new(),
            retired: Vec::new(),
            intervals,
            staleness,
            stable_sn: SnapshotId::BASE,
            last_announced: SnapshotId::BASE,
        }
    }

    /// Registers a new stream mid-flight (targets extend transparently;
    /// existing snapshot numbers are unaffected, §4.3).
    ///
    /// Already-announced mappings receive staged targets for the new
    /// stream (the i-th in-flight mapping targets `(i+1) × staleness`
    /// batches), so injection of the new stream can begin immediately.
    pub fn add_stream(&mut self, interval_ms: u64) {
        self.intervals.push(interval_ms);
        let s = self.intervals.len() - 1;
        for (i, e) in self.announced.iter_mut().enumerate() {
            e.target.grow(self.intervals.len());
            let mut t = e.target.entries().to_vec();
            t[s] = (i as u64 + 1) * self.staleness.0 * interval_ms;
            e.target = Vts::from_entries(t);
        }
    }

    /// Number of streams covered.
    pub fn streams(&self) -> usize {
        self.intervals.len()
    }

    /// The current stable snapshot, read by every one-shot query.
    pub fn stable_sn(&self) -> SnapshotId {
        self.stable_sn
    }

    /// The announced mappings (for inspection and checkpointing).
    pub fn announced(&self) -> &[PlanEntry] {
        &self.announced
    }

    /// Announces the next mapping, targeting `staleness` batches past
    /// `reached` on every stream.
    ///
    /// Called at start-up and whenever the previous mapping is reached on
    /// all nodes; keeping at most one in-flight mapping is what bounds the
    /// per-key snapshot count ("each key only needs to maintain … two
    /// snapshots, one is for using and another is for inserting").
    pub fn announce_next(&mut self, reached: &Vts) {
        let sn = self.last_announced.next();
        let mut target = reached.clone();
        target.grow(self.intervals.len());
        // Streams share one time axis: align every stream's target to the
        // most advanced stream's position, so a stream that registered
        // late (or fell behind) may insert its whole backlog within one
        // snapshot and catch up instead of lagging one batch per epoch.
        let base_time = target.entries().iter().copied().max().unwrap_or(0);
        let t: Vec<Timestamp> = self
            .intervals
            .iter()
            .enumerate()
            .map(|(i, interval)| base_time.max(target.get(i)) + self.staleness.0 * interval)
            .collect();
        self.announced.push(PlanEntry {
            sn,
            target: Vts::from_entries(t),
        });
        self.last_announced = sn;
    }

    /// The snapshot an injector must tag a batch of stream `stream` at
    /// timestamp `ts` with: the smallest announced snapshot whose target
    /// covers the batch.
    ///
    /// Returns `None` when no announced mapping covers the batch yet — the
    /// injector must stall until the coordinator publishes the next plan
    /// (Fig. 11's "Node1 is stalled to wait for the new plan").
    pub fn snapshot_for(&self, stream: usize, ts: Timestamp) -> Option<SnapshotId> {
        self.announced
            .iter()
            .find(|e| e.target.get(stream) >= ts)
            .map(|e| e.sn)
    }

    /// Advances the stable snapshot given every node's local VTS.
    ///
    /// A mapping is *reached* when the stable VTS dominates its target;
    /// reached mappings retire, the stable SN rises to the last of them,
    /// and a fresh mapping is announced per retirement. Returns the new
    /// stable SN if it changed.
    pub fn on_vts_update(&mut self, node_vts: &[Vts]) -> Option<SnapshotId> {
        let stable = Vts::stable(node_vts.iter());
        let mut changed = None;
        while let Some(first) = self.announced.first() {
            if stable.len() >= first.target.len() && {
                let mut grown = stable.clone();
                grown.grow(first.target.len());
                grown.dominates(&first.target)
            } {
                let reached = self.announced.remove(0);
                self.stable_sn = reached.sn;
                changed = Some(reached.sn);
                // Base the next target on the *retired target only* —
                // never on how far the stable VTS overshot it. Targets
                // then form a pure grid: a deterministic function of
                // the retirement count, independent of batch arrival
                // order. This is what makes snapshot assignment (and
                // therefore every window's firing result) reproducible
                // across fault schedules and recovery replays — a
                // backlog drained stream-by-stream after an outage
                // retires the exact same plan sequence the fault-free
                // run did. A stream that bursts far ahead stalls its
                // injection on the one in-flight mapping (Fig. 11's
                // documented stall) while the cascade below catches the
                // grid up one epoch per loop iteration.
                let base = reached.target.clone();
                self.retired.push(reached);
                self.announce_next(&base);
            } else {
                break;
            }
        }
        changed
    }

    /// The snapshot that consolidation may merge up to: everything older
    /// than the stable snapshot is no longer readable by new queries.
    /// The engine additionally clamps this below every un-fired window's
    /// assigned snapshot (see [`SnVtsPlanner::snapshot_at`]) so delayed
    /// firings still read their exact historical snapshot.
    pub fn consolidation_horizon(&self) -> Option<SnapshotId> {
        (self.stable_sn.0 > 0).then(|| SnapshotId(self.stable_sn.0 - 1))
    }

    /// The snapshot assigned to `stream`'s batch at `ts`, across the
    /// whole plan history (retired and announced alike): the smallest
    /// epoch whose target covers the batch. This is the snapshot a
    /// window ending at `ts` must execute at for its rows to be a pure
    /// function of the window — available even when the firing runs
    /// long after the epoch retired. `None` only for a timestamp beyond
    /// every announced target (the window could not be ready yet).
    pub fn snapshot_at(&self, stream: usize, ts: Timestamp) -> Option<SnapshotId> {
        // Targets are monotone over the retired history (it grew one
        // grid step per retirement), so the lookup binary-searches it.
        let i = self.retired.partition_point(|e| e.target.get(stream) < ts);
        if let Some(e) = self.retired.get(i) {
            return Some(e.sn);
        }
        self.announced
            .iter()
            .find(|e| e.target.get(stream) >= ts)
            .map(|e| e.sn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vts(e: &[Timestamp]) -> Vts {
        Vts::from_entries(e.to_vec())
    }

    #[test]
    fn announce_and_assign() {
        // Two streams with 100 ms batches; staleness 1 → each snapshot
        // covers one more batch per stream.
        let mut p = SnVtsPlanner::new(vec![100, 100], StalenessBound(1));
        p.announce_next(&vts(&[0, 0]));
        assert_eq!(p.announced().len(), 1);
        assert_eq!(p.announced()[0].sn, SnapshotId(1));
        assert_eq!(p.announced()[0].target, vts(&[100, 100]));

        assert_eq!(p.snapshot_for(0, 100), Some(SnapshotId(1)));
        // Batch beyond the announced target stalls.
        assert_eq!(p.snapshot_for(0, 200), None);
    }

    #[test]
    fn stable_sn_advances_when_all_nodes_reach() {
        let mut p = SnVtsPlanner::new(vec![100], StalenessBound(1));
        p.announce_next(&vts(&[0]));

        // Node 0 reached the target, node 1 lags → no advance.
        assert_eq!(p.on_vts_update(&[vts(&[100]), vts(&[0])]), None);
        assert_eq!(p.stable_sn(), SnapshotId::BASE);

        // Both reached → stable SN 1 and a fresh mapping for SN 2.
        assert_eq!(
            p.on_vts_update(&[vts(&[100]), vts(&[100])]),
            Some(SnapshotId(1))
        );
        assert_eq!(p.stable_sn(), SnapshotId(1));
        assert_eq!(p.announced().len(), 1);
        assert_eq!(p.announced()[0].sn, SnapshotId(2));
        assert_eq!(p.announced()[0].target, vts(&[200]));
        // Injection can now proceed into snapshot 2.
        assert_eq!(p.snapshot_for(0, 200), Some(SnapshotId(2)));
    }

    #[test]
    fn staleness_widens_targets() {
        let mut p = SnVtsPlanner::new(vec![100], StalenessBound(5));
        p.announce_next(&vts(&[0]));
        assert_eq!(p.announced()[0].target, vts(&[500]));
        // All five batches of the window map to the same snapshot.
        for ts in [100, 200, 300, 400, 500] {
            assert_eq!(p.snapshot_for(0, ts), Some(SnapshotId(1)));
        }
    }

    #[test]
    fn dynamic_stream_extends_plan() {
        let mut p = SnVtsPlanner::new(vec![100], StalenessBound(1));
        p.announce_next(&vts(&[0]));
        p.add_stream(50);
        assert_eq!(p.streams(), 2);
        // The in-flight mapping receives a staged target for the new
        // stream, so its injection can start at once.
        assert_eq!(p.announced()[0].target, vts(&[100, 50]));
        assert_eq!(p.snapshot_for(1, 50), Some(SnapshotId(1)));
        // Once both streams reach the target the mapping retires; the
        // next target aligns the late stream to the shared time axis so
        // it can catch up within one snapshot.
        p.on_vts_update(&[vts(&[100, 50])]);
        assert_eq!(p.stable_sn(), SnapshotId(1));
        assert_eq!(p.announced()[0].target, vts(&[200, 150]));
    }

    #[test]
    fn consolidation_horizon_trails_stable() {
        let mut p = SnVtsPlanner::new(vec![100], StalenessBound(1));
        assert_eq!(p.consolidation_horizon(), None);
        p.announce_next(&vts(&[0]));
        p.on_vts_update(&[vts(&[100])]);
        assert_eq!(p.stable_sn(), SnapshotId(1));
        assert_eq!(p.consolidation_horizon(), Some(SnapshotId(0)));
    }
}
