//! Vector timestamps over streams (§4.3, Fig. 10).
//!
//! A [`Vts`] records, per stream, the timestamp of the latest batch whose
//! insertion has finished. Every node maintains a *local* VTS; the
//! coordinator computes the *stable* VTS as the element-wise minimum over
//! all nodes' local VTS — a batch is visible only when it has been
//! inserted at **all** nodes, since its tuples shard across the cluster.

use wukong_rdf::Timestamp;

/// The timestamp value meaning "no batch inserted yet".
pub const NEVER: Timestamp = 0;

/// A vector timestamp: one entry per registered stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Vts {
    t: Vec<Timestamp>,
}

impl Vts {
    /// A VTS over `streams` streams, all at [`NEVER`].
    pub fn new(streams: usize) -> Self {
        Vts {
            t: vec![NEVER; streams],
        }
    }

    /// Number of streams tracked.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether no stream is tracked.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// The entry for stream `i`.
    pub fn get(&self, i: usize) -> Timestamp {
        self.t[i]
    }

    /// Advances stream `i` to `ts`.
    ///
    /// Batches of one stream arrive in order (§4.3's consistency rule), so
    /// the entry only moves forward; regressions are ignored.
    pub fn advance(&mut self, i: usize, ts: Timestamp) {
        if ts > self.t[i] {
            self.t[i] = ts;
        }
    }

    /// Grows the vector to cover `streams` streams ("the snapshot
    /// scalarization mechanism is very flexible to handle dynamic streams",
    /// §4.3 — adding stream S2 just extends the vector).
    pub fn grow(&mut self, streams: usize) {
        if streams > self.t.len() {
            self.t.resize(streams, NEVER);
        }
    }

    /// Element-wise minimum of `vs` — the stable VTS over nodes.
    ///
    /// Returns an empty VTS if `vs` is empty.
    pub fn stable<'a>(vs: impl IntoIterator<Item = &'a Vts>) -> Vts {
        let mut it = vs.into_iter();
        let mut acc = match it.next() {
            Some(v) => v.clone(),
            None => return Vts::default(),
        };
        for v in it {
            debug_assert_eq!(v.len(), acc.len(), "VTS width mismatch across nodes");
            for (a, &b) in acc.t.iter_mut().zip(&v.t) {
                *a = (*a).min(b);
            }
        }
        acc
    }

    /// Whether every entry of `self` is ≥ the corresponding entry of
    /// `other` (i.e. `self` dominates `other`).
    pub fn dominates(&self, other: &Vts) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.t.iter().zip(&other.t).all(|(a, b)| a >= b)
    }

    /// Direct access to the entries (checkpointing).
    pub fn entries(&self) -> &[Timestamp] {
        &self.t
    }

    /// Rebuilds a VTS from checkpointed entries.
    pub fn from_entries(t: Vec<Timestamp>) -> Self {
        Vts { t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_is_monotonic() {
        let mut v = Vts::new(2);
        v.advance(0, 5);
        v.advance(0, 3); // ignored
        assert_eq!(v.get(0), 5);
        assert_eq!(v.get(1), NEVER);
    }

    #[test]
    fn stable_is_elementwise_min() {
        // Fig. 10: Node0 at [S0=4,S1=12], Node1 at [S0=5,S1=12] →
        // stable [S0=4,S1=12].
        let mut n0 = Vts::new(2);
        n0.advance(0, 4);
        n0.advance(1, 12);
        let mut n1 = Vts::new(2);
        n1.advance(0, 5);
        n1.advance(1, 12);
        let s = Vts::stable([&n0, &n1]);
        assert_eq!(s.get(0), 4);
        assert_eq!(s.get(1), 12);
    }

    #[test]
    fn dominates_checks_every_entry() {
        let a = Vts::from_entries(vec![5, 12]);
        let b = Vts::from_entries(vec![4, 12]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
    }

    #[test]
    fn grow_preserves_existing() {
        let mut v = Vts::from_entries(vec![7]);
        v.grow(3);
        assert_eq!(v.entries(), &[7, NEVER, NEVER]);
        v.grow(2); // never shrinks
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn stable_of_nothing_is_empty() {
        assert!(Vts::stable([]).is_empty());
    }
}
