//! The per-node Injector (§3, §4.1).
//!
//! Applies one sub-batch to the node's slice of the hybrid store. This
//! module is the *single-shard* injection path (every key owned
//! locally), used by single-node deployments, tests and baselines; the
//! distributed engine routes each key update to its owner shard itself
//! (see `wukong-core`'s batch-processing path) because one triple's four
//! key updates may live on three different nodes.
//!
//! Timeless tuples go into the persistent shard (their timestamps dropped,
//! their append receipts becoming a stream-index batch), timing tuples go
//! into the stream's transient ring. Injection and indexing times are
//! kept separate because Table 6 reports them separately.

use crate::dispatcher::SubBatch;
use std::time::Instant;
use wukong_rdf::{StreamTuple, Timestamp};
use wukong_store::{
    IndexBatch, PersistentShard, SnapshotId, StreamIndex, TransientSlice, TransientStore,
};

/// Per-stream stores of one node (transient ring + stream index).
#[derive(Debug)]
pub struct NodeStreamStore {
    /// Timing-data ring buffer.
    pub transient: TransientStore,
    /// Timeless-data stream index.
    pub index: StreamIndex,
}

impl NodeStreamStore {
    /// Creates the per-stream stores with a transient memory budget.
    pub fn new(transient_budget_bytes: usize) -> Self {
        NodeStreamStore {
            transient: TransientStore::new(transient_budget_bytes),
            index: StreamIndex::new(),
        }
    }
}

/// Cost and volume accounting for one injected sub-batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InjectStats {
    /// Timeless tuples absorbed into the persistent store.
    pub timeless: usize,
    /// Timing tuples stored in the transient ring.
    pub timing: usize,
    /// Tuples the adaptor discarded as irrelevant to any query.
    pub discarded: usize,
    /// Far-future timestamp jumps the adaptor coalesced into bounded
    /// heartbeat runs (bad clocks; see `Adaptor::MAX_EMPTY_RUN`).
    pub clock_anomalies: usize,
    /// Nanoseconds spent appending to the persistent + transient stores.
    pub inject_ns: u64,
    /// Nanoseconds spent building and appending the stream index.
    pub index_ns: u64,
}

impl InjectStats {
    /// Accumulates another sub-batch's stats.
    pub fn add(&mut self, other: &InjectStats) {
        self.timeless += other.timeless;
        self.timing += other.timing;
        self.discarded += other.discarded;
        self.clock_anomalies += other.clock_anomalies;
        self.inject_ns += other.inject_ns;
        self.index_ns += other.index_ns;
    }
}

/// The injector of one node.
#[derive(Debug, Default)]
pub struct Injector;

impl Injector {
    /// Applies `sub` (a batch slice with timestamp `ts`) under snapshot
    /// `sn`, returning the stream-index batch built from the appends plus
    /// cost accounting.
    ///
    /// The returned [`IndexBatch`] is what locality-aware partitioning
    /// replicates to subscriber nodes (§4.2) — the caller pushes it into
    /// this node's [`NodeStreamStore`] and ships copies elsewhere.
    pub fn apply(
        &self,
        shard: &PersistentShard,
        store: &mut NodeStreamStore,
        sub: &SubBatch,
        ts: Timestamp,
        sn: SnapshotId,
    ) -> (IndexBatch, InjectStats) {
        self.apply_merging(shard, store, sub, ts, sn, None)
    }

    /// Like [`Injector::apply`], consolidating touched cells' snapshot
    /// intervals up to `merge_upto` while appending (§4.3's injection-time
    /// snapshot recycling).
    pub fn apply_merging(
        &self,
        shard: &PersistentShard,
        store: &mut NodeStreamStore,
        sub: &SubBatch,
        ts: Timestamp,
        sn: SnapshotId,
        merge_upto: Option<SnapshotId>,
    ) -> (IndexBatch, InjectStats) {
        self.apply_split(
            shard,
            &mut store.transient,
            &mut store.index,
            sub,
            ts,
            sn,
            merge_upto,
        )
    }

    /// The workhorse: like [`Injector::apply_merging`] but over separately
    /// borrowed transient/index structures (the engine keeps them behind
    /// independent locks).
    #[allow(clippy::too_many_arguments)]
    pub fn apply_split(
        &self,
        shard: &PersistentShard,
        transient: &mut TransientStore,
        index: &mut StreamIndex,
        sub: &SubBatch,
        ts: Timestamp,
        sn: SnapshotId,
        merge_upto: Option<SnapshotId>,
    ) -> (IndexBatch, InjectStats) {
        let mut stats = InjectStats::default();

        // Persistent store: timeless tuples only.
        let timeless: Vec<_> = sub
            .tuples
            .iter()
            .filter(|t| t.is_timeless())
            .map(|t| t.triple)
            .collect();
        let t0 = Instant::now();
        let receipts = shard.inject_batch_merging(&timeless, sn, merge_upto);
        stats.timeless = timeless.len();

        // Transient store: timing tuples.
        let timing: Vec<StreamTuple> = sub
            .tuples
            .iter()
            .filter(|t| !t.is_timeless())
            .copied()
            .collect();
        stats.timing = timing.len();
        transient.push_batch(TransientSlice::from_batch(ts, &timing));
        stats.inject_ns = t0.elapsed().as_nanos() as u64;

        // Stream index from the persistent appends.
        let t1 = Instant::now();
        let batch = IndexBatch::from_receipts(ts, &receipts);
        index.push_batch(batch.clone());
        stats.index_ns = t1.elapsed().as_nanos() as u64;

        (batch, stats)
    }

    /// Replays a replicated index batch from another node (the replica
    /// side of locality-aware partitioning).
    pub fn apply_replica(&self, store: &mut NodeStreamStore, batch: IndexBatch) {
        store.index.push_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wukong_obs::BatchId;
    use wukong_rdf::{Dir, Key, Pid, Triple, Vid};

    fn timeless(s: u64, p: u64, o: u64, ts: Timestamp) -> StreamTuple {
        StreamTuple::timeless(Triple::new(Vid(s), Pid(p), Vid(o)), ts)
    }

    fn timing(s: u64, p: u64, o: u64, ts: Timestamp) -> StreamTuple {
        StreamTuple::timing(Triple::new(Vid(s), Pid(p), Vid(o)), ts)
    }

    #[test]
    fn splits_timeless_and_timing() {
        let shard = PersistentShard::new(4);
        let mut store = NodeStreamStore::new(1 << 20);
        let sub = SubBatch {
            batch: BatchId::mint(0, 100),
            node: 0,
            tuples: vec![timeless(1, 2, 3, 50), timing(4, 5, 6, 60)],
            checksum: 0,
        };
        let (batch, stats) = Injector.apply(&shard, &mut store, &sub, 100, SnapshotId(1));
        assert_eq!(stats.timeless, 1);
        assert_eq!(stats.timing, 1);
        assert!(batch.entry_count() >= 2); // out, in and index keys

        // Timeless landed in the persistent store…
        assert!(shard.exists_at(Vid(1), Pid(2), Vid(3), SnapshotId(1)));
        // …timing did not, but is in the transient ring.
        assert!(!shard.exists_at(Vid(4), Pid(5), Vid(6), SnapshotId(1)));
        assert_eq!(
            store
                .transient
                .neighbors_in(Key::new(Vid(4), Pid(5), Dir::Out), 100, 100),
            vec![Vid(6)]
        );
    }

    #[test]
    fn stream_index_resolves_window() {
        let shard = PersistentShard::new(4);
        let mut store = NodeStreamStore::new(1 << 20);
        for (ts, o) in [(100u64, 10u64), (200, 11), (300, 12)] {
            let sub = SubBatch {
                batch: BatchId::mint(0, ts),
                node: 0,
                tuples: vec![timeless(1, 2, o, ts - 10)],
                checksum: 0,
            };
            Injector.apply(&shard, &mut store, &sub, ts, SnapshotId(1));
        }
        // Window [150, 250] sees only the middle batch through the index.
        let key = Key::new(Vid(1), Pid(2), Dir::Out);
        let mut out = Vec::new();
        // The replica path reads through the shard's partitions.
        store.index.for_each_pointer_in(key, 150, 250, |fp| {
            shard.read_range(key, fp.start, fp.len, &mut out);
        });
        assert_eq!(out, vec![Vid(11)]);
    }

    #[test]
    fn replica_replay_matches_source() {
        let shard = PersistentShard::new(4);
        let mut src = NodeStreamStore::new(1 << 20);
        let mut dst = NodeStreamStore::new(1 << 20);
        let sub = SubBatch {
            batch: BatchId::mint(0, 100),
            node: 0,
            tuples: vec![timeless(1, 2, 3, 90)],
            checksum: 0,
        };
        let (batch, _) = Injector.apply(&shard, &mut src, &sub, 100, SnapshotId(1));
        Injector.apply_replica(&mut dst, batch);
        assert_eq!(dst.index.batch_count(), 1);
        let key = Key::new(Vid(1), Pid(2), Dir::Out);
        assert_eq!(dst.index.count_in(key, 100, 100), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = InjectStats {
            timeless: 1,
            timing: 2,
            discarded: 1,
            clock_anomalies: 0,
            inject_ns: 10,
            index_ns: 20,
        };
        a.add(&InjectStats {
            timeless: 3,
            timing: 4,
            discarded: 2,
            clock_anomalies: 1,
            inject_ns: 30,
            index_ns: 40,
        });
        assert_eq!(a.timeless, 4);
        assert_eq!(a.timing, 6);
        assert_eq!(a.discarded, 3);
        assert_eq!(a.clock_anomalies, 1);
        assert_eq!(a.inject_ns, 40);
        assert_eq!(a.index_ns, 60);
    }
}
